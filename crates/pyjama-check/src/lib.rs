//! # pyjama-check — deterministic interleaving checking for the lock-free core
//!
//! A loom-style model checker for the protocols pyjama's runtime trusts:
//! the Chase–Lev deque, the `WakeSignal` eventcount park, the omp pool's
//! done-signal join, the control plane's snapshot cell and the live-shrink
//! retire drain. Code under test runs on **virtual threads**
//! whose every shared-memory operation goes through instrumented shims
//! ([`shim`]) and becomes a scheduling point; the [`Checker`] then executes
//! the closure under many interleavings — bounded-exhaustive DFS first,
//! seeded random schedules beyond that — and reports any failing schedule
//! as a readable operation trace plus a one-line replay recipe.
//!
//! ```
//! use pyjama_check::{Checker, shim};
//! use shim::Ordering::SeqCst;
//! use std::sync::Arc;
//!
//! // Two threads CAS the same counter: exactly one wins.
//! Checker::default().check("cas-once", || {
//!     let x = Arc::new(shim::AtomicU64::named("x", 0));
//!     let x2 = Arc::clone(&x);
//!     let t = shim::thread::spawn("racer", move || {
//!         let _ = x2.compare_exchange(0, 1, SeqCst, SeqCst);
//!     });
//!     let _ = x.compare_exchange(0, 2, SeqCst, SeqCst);
//!     t.join();
//!     let v = x.load(SeqCst);
//!     assert!(v == 1 || v == 2);
//! });
//! ```
//!
//! ## What a failure looks like
//!
//! An assertion, deadlock (lost wakeup), or op-budget livelock stops the
//! run; [`Checker::check`] panics with the schedule (a dot-separated choice
//! vector), the tail of the operation trace, and a `PJ_CHECK_REPLAY`
//! one-liner that re-runs exactly that interleaving. Programmatic callers
//! use [`Checker::find_failure`] / [`Checker::replay`] — that is how the
//! seeded-mutation regression tests pin known-bad schedules.
//!
//! ## Fidelity and limitations
//!
//! Interleavings are explored at shim-operation granularity under a **TSO
//! store-buffer** memory model (see [`shim`]): weakening a SeqCst store or
//! fence to Relaxed really delays its global visibility, so eventcount /
//! Dekker-style store→load hazards are caught. Load→load and store→store
//! reordering (non-TSO weak memory) are *not* modelled, timed waits ignore
//! actual durations (a timeout is just always possible), and `notify_one`
//! wakes FIFO. DESIGN.md §5h documents the model in full.

pub mod models;
pub(crate) mod sched;
#[cfg(test)]
mod scenarios;
pub mod shim;

use std::sync::Arc;

pub use models::Mutation;

/// Exploration budget and determinism knobs. `Default` is sized for CI on
/// one CPU: a DFS pass capped at `max_schedules`, then `random_iters`
/// seeded random schedules if the DFS was truncated.
#[derive(Clone, Debug)]
pub struct Checker {
    /// Cap on DFS schedules before falling back to random exploration.
    pub max_schedules: usize,
    /// Random schedules run when (and only when) the DFS pass truncated.
    pub random_iters: usize,
    /// Seed for the random pass; fixed by default so CI is deterministic.
    pub seed: u64,
    /// Per-schedule operation budget; exceeding it is reported as livelock.
    pub max_ops: usize,
    /// DFS backtracking depth cap: decisions beyond it always take branch 0
    /// and are not backtracked (counts toward `truncated`).
    pub depth_cap: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_schedules: 1500,
            random_iters: 200,
            seed: 0x5EED_CAFE,
            max_ops: 5000,
            depth_cap: 400,
        }
    }
}

/// What an exploration did — returned on success so callers (and CI logs)
/// can see coverage instead of silent truncation.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Total schedules executed (DFS + random).
    pub schedules: u64,
    /// True when the DFS pass covered the whole choice tree within its
    /// caps; false means the random pass supplemented a truncated DFS.
    pub dfs_complete: bool,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Scenario name the checker was invoked with.
    pub name: String,
    /// The failure headline (panic message, deadlock, or livelock).
    pub message: String,
    /// The choice vector identifying the interleaving.
    pub schedule: Vec<usize>,
    /// Human-readable tail of the operation trace.
    pub trace: String,
    /// Schedules explored before this failure surfaced.
    pub schedules_explored: u64,
    /// Seed of the random pass, when the failure came from one.
    pub seed: Option<u64>,
}

impl FailureReport {
    /// The full multi-line report [`Checker::check`] panics with.
    pub fn render(&self) -> String {
        let sched_str = schedule_string(&self.schedule);
        let seed_line = match self.seed {
            Some(s) => format!("\nfound by random pass, seed {s:#x}"),
            None => String::new(),
        };
        format!(
            "pyjama-check: scenario '{}' failed after {} schedule(s)\n\
             failure: {}{}\n\
             schedule: {}\n\
             replay: PJ_CHECK_REPLAY='{}:{}' (or Checker::replay)\n\
             trace (last ops):\n{}",
            self.name,
            self.schedules_explored,
            self.message,
            seed_line,
            sched_str,
            self.name,
            sched_str,
            self.trace,
        )
    }
}

fn schedule_string(s: &[usize]) -> String {
    s.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(".")
}

fn parse_schedule(s: &str) -> Vec<usize> {
    s.split(['.', ','])
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().expect("PJ_CHECK_REPLAY: not a number"))
        .collect()
}

fn render_trace(out: &sched::RunOutcome, tail: usize) -> String {
    let start = out.trace.len().saturating_sub(tail);
    let mut s = String::new();
    if start > 0 {
        s.push_str(&format!("  … {start} earlier op(s) elided …\n"));
    }
    for (tid, desc) in &out.trace[start..] {
        let name = out
            .thread_names
            .get(*tid)
            .map(String::as_str)
            .unwrap_or("?");
        s.push_str(&format!("  [{tid}:{name}] {desc}\n"));
    }
    s
}

impl Checker {
    /// A configuration that only runs the bounded-exhaustive DFS pass.
    pub fn exhaustive(max_schedules: usize) -> Self {
        Checker { max_schedules, random_iters: 0, ..Checker::default() }
    }

    /// A configuration that skips DFS and runs `iters` seeded random
    /// schedules — for state spaces known to dwarf the DFS budget.
    pub fn random(iters: usize, seed: u64) -> Self {
        Checker { max_schedules: 0, random_iters: iters, seed, ..Checker::default() }
    }

    /// Explores `f` under many interleavings; panics with a rendered
    /// [`FailureReport`] on the first failing schedule. Honors
    /// `PJ_CHECK_REPLAY='<name>:<c0.c1…>'` by replaying exactly that
    /// schedule when `<name>` matches.
    pub fn check(&self, name: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
        match self.explore(name, Arc::new(f)) {
            Ok(report) => report,
            Err(fail) => panic!("{}", fail.render()),
        }
    }

    /// Like [`check`](Self::check) but returns the failure instead of
    /// panicking — the entry point for mutation tests that *expect* the
    /// checker to find a bug.
    pub fn find_failure(
        &self,
        name: &str,
        f: impl Fn() + Send + Sync + 'static,
    ) -> Option<FailureReport> {
        self.explore(name, Arc::new(f)).err()
    }

    /// Runs exactly one schedule, given by its choice vector (as printed in
    /// a failure report). Returns the failure if it reproduces.
    pub fn replay(
        &self,
        name: &str,
        schedule: &[usize],
        f: impl Fn() + Send + Sync + 'static,
    ) -> Option<FailureReport> {
        let out = sched::run_once(
            Arc::new(f),
            sched::Mode::Dfs,
            schedule.to_vec(),
            self.seed,
            self.max_ops,
        );
        self.outcome_to_failure(name, out, 1, None)
    }

    fn outcome_to_failure(
        &self,
        name: &str,
        out: sched::RunOutcome,
        schedules: u64,
        seed: Option<u64>,
    ) -> Option<FailureReport> {
        let message = out.failure.clone()?;
        Some(FailureReport {
            name: name.to_string(),
            message,
            schedule: out.choices.iter().map(|c| c.picked).collect(),
            trace: render_trace(&out, 120),
            schedules_explored: schedules,
            seed,
        })
    }

    fn explore(
        &self,
        name: &str,
        f: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Report, FailureReport> {
        // Replay mode: run the requested schedule and nothing else.
        if let Ok(replay) = std::env::var("PJ_CHECK_REPLAY") {
            if let Some((n, sched_str)) = replay.split_once(':') {
                if n == name {
                    let out = sched::run_once(
                        Arc::clone(&f),
                        sched::Mode::Dfs,
                        parse_schedule(sched_str),
                        self.seed,
                        self.max_ops,
                    );
                    return match self.outcome_to_failure(name, out, 1, None) {
                        Some(fail) => Err(fail),
                        None => Ok(Report { schedules: 1, dfs_complete: false }),
                    };
                }
            }
        }

        let mut schedules = 0u64;
        let mut truncated = false;
        let mut dfs_complete = false;

        // Pass 1: bounded-exhaustive DFS over the choice tree.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if schedules as usize >= self.max_schedules {
                break;
            }
            let out = sched::run_once(
                Arc::clone(&f),
                sched::Mode::Dfs,
                prefix.clone(),
                self.seed,
                self.max_ops,
            );
            schedules += 1;
            if out.failure.is_some() {
                return Err(self.outcome_to_failure(name, out, schedules, None).unwrap());
            }
            if out.choices.len() > self.depth_cap {
                truncated = true;
            }
            match sched::dfs_advance(&out.choices, self.depth_cap) {
                Some(next) => prefix = next,
                None => {
                    dfs_complete = !truncated;
                    break;
                }
            }
        }

        // Pass 2: seeded random schedules, only when DFS didn't cover the
        // whole tree.
        if !dfs_complete {
            for i in 0..self.random_iters {
                let seed = self.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let out = sched::run_once(
                    Arc::clone(&f),
                    sched::Mode::Random,
                    Vec::new(),
                    seed,
                    self.max_ops,
                );
                schedules += 1;
                if out.failure.is_some() {
                    return Err(self
                        .outcome_to_failure(name, out, schedules, Some(seed))
                        .unwrap());
                }
            }
        }

        Ok(Report { schedules, dfs_complete })
    }
}

/// Explores `$body` under the default [`Checker`] budget; panics with a
/// replayable failure report on any bad interleaving.
///
/// ```
/// pyjama_check::check!("nothing-shared", || {});
/// ```
#[macro_export]
macro_rules! check {
    ($name:expr, $body:expr) => {
        $crate::Checker::default().check($name, $body)
    };
    ($name:expr, $cfg:expr, $body:expr) => {
        ($cfg).check($name, $body)
    };
}
