//! The adversarial scenario suite: the three ported protocols driven
//! through their known-hairy windows, plus the seeded-mutation tests that
//! prove the checker catches reintroduced bugs.
//!
//! Structure of every mutation test: the *same* scenario closure is run
//! with `Mutation::None` (must pass) elsewhere in this file, and with one
//! mutation (must fail) here — and the failing schedule must reproduce via
//! [`Checker::replay`], which is the acceptance bar for "single-line seed
//! replay on failure".

use std::sync::atomic::{AtomicUsize, Ordering as StdOrd};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use crate::models::config_cell::{ModelConfigCell, ModelRetirePool};
use crate::models::deque::{ModelDeque, ModelSteal};
use crate::models::parker::{model_await, ModelWakeSignal};
use crate::models::pool_join::{ModelInjector, ModelPool, ModelSlot, NO_JOB};
use crate::models::Mutation;
use crate::shim;
use crate::shim::Ordering::SeqCst;
use crate::{Checker, FailureReport};

/// Budget used by the bigger scenarios: enough DFS to cover the shallow
/// prefixes, a seeded random pass for the deep tail. Small scenarios use
/// `Checker::default()` and often complete their DFS outright.
fn wide() -> Checker {
    Checker { max_schedules: 400, random_iters: 300, ..Checker::default() }
}

fn assert_caught(name: &str, fail: Option<FailureReport>) -> FailureReport {
    fail.unwrap_or_else(|| panic!("mutation scenario '{name}' was NOT caught — checker has no teeth"))
}

/// Re-runs a caught failure from its recorded schedule and asserts it
/// reproduces — the replay workflow every failure report prints.
fn assert_replays(fail: &FailureReport, f: impl Fn() + Send + Sync + 'static) {
    let again = Checker::default()
        .replay(&fail.name, &fail.schedule, f)
        .unwrap_or_else(|| panic!("schedule {:?} did not reproduce '{}'", fail.schedule, fail.name));
    assert_eq!(again.message, fail.message, "replay found a different failure");
}

// ---------------------------------------------------------------- litmus

/// Store buffering (Dekker): with Relaxed stores both threads can read 0 —
/// the TSO outcome the store buffers exist to model. The checker must find
/// it (this is a *positive* test of the memory model's weakness).
#[test]
fn tso_litmus_store_buffering_relaxed_found() {
    let fail = Checker::default().find_failure("sb-relaxed", || {
        let x = Arc::new(shim::AtomicU64::named("x", 0));
        let y = Arc::new(shim::AtomicU64::named("y", 0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let r2 = Arc::new(StdMutex::new(u64::MAX));
        let r2w = Arc::clone(&r2);
        let t = shim::thread::spawn("t2", move || {
            y2.store(1, shim::Ordering::Relaxed);
            *r2w.lock().unwrap() = x2.load(shim::Ordering::Relaxed);
        });
        x.store(1, shim::Ordering::Relaxed);
        let r1 = y.load(shim::Ordering::Relaxed);
        t.join();
        let r2v = *r2.lock().unwrap();
        assert!(!(r1 == 0 && r2v == 0), "both saw 0: store->load reordering");
    });
    assert!(fail.is_some(), "TSO model failed to exhibit store buffering");
}

/// The same litmus with SeqCst everywhere must be clean in *every*
/// interleaving — and the tree is small enough for a complete DFS.
#[test]
fn tso_litmus_store_buffering_seqcst_clean() {
    let report = Checker::exhaustive(100_000).check("sb-seqcst", || {
        let x = Arc::new(shim::AtomicU64::named("x", 0));
        let y = Arc::new(shim::AtomicU64::named("y", 0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let r2 = Arc::new(StdMutex::new(u64::MAX));
        let r2w = Arc::clone(&r2);
        let t = shim::thread::spawn("t2", move || {
            y2.store(1, SeqCst);
            *r2w.lock().unwrap() = x2.load(SeqCst);
        });
        x.store(1, SeqCst);
        let r1 = y.load(SeqCst);
        t.join();
        let r2v = *r2.lock().unwrap();
        assert!(!(r1 == 0 && r2v == 0), "SeqCst SB must forbid 0/0");
    });
    assert!(report.dfs_complete, "SeqCst litmus should DFS-complete");
    assert!(report.schedules > 1, "expected more than one interleaving");
}

/// A genuinely lost notify must surface as a deadlock, not a hang.
#[test]
fn lost_notify_reported_as_deadlock() {
    let fail = Checker::default().find_failure("lost-notify", || {
        let sig = Arc::new(ModelWakeSignal::new(Mutation::None));
        let t = {
            let sig = Arc::clone(&sig);
            shim::thread::spawn("sleeper", move || sig.park())
        };
        // Nobody ever notifies: the sleeper can never finish.
        t.join();
    });
    let fail = assert_caught("lost-notify", fail);
    assert!(fail.message.contains("deadlock"), "got: {}", fail.message);
}

// ----------------------------------------------------------------- deque

/// Scenario: steal-vs-owner-pop around the last item, all interleavings.
/// Owner pushes, pops to empty; a thief steals concurrently. Every pushed
/// item must be claimed exactly once, by somebody.
fn deque_one_item_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let d = Arc::new(ModelDeque::new(4, mutation));
        let claims = Arc::new(StdMutex::new(Vec::<u64>::new()));
        d.push(7);
        let t = {
            let (d, claims) = (Arc::clone(&d), Arc::clone(&claims));
            shim::thread::spawn("thief", move || {
                for _ in 0..3 {
                    match d.steal() {
                        ModelSteal::Item(v) => {
                            assert_ne!(v, u64::MAX, "stole an uninitialised slot");
                            claims.lock().unwrap().push(v);
                            break;
                        }
                        ModelSteal::Empty => break,
                        ModelSteal::Retry => continue,
                    }
                }
            })
        };
        while let Some(v) = d.pop() {
            claims.lock().unwrap().push(v);
        }
        t.join();
        let got = claims.lock().unwrap().clone();
        assert_eq!(got.iter().filter(|&&v| v == 7).count(), 1, "claims: {got:?}");
    }
}

/// Two items, a second thief: exercises the non-last pop path (no CAS) and
/// thief-vs-thief CAS races alongside the owner.
fn deque_two_items_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let d = Arc::new(ModelDeque::new(4, mutation));
        let claims = Arc::new(StdMutex::new(Vec::<u64>::new()));
        d.push(10);
        d.push(20);
        let spawn_thief = |n: &str| {
            let (d, claims) = (Arc::clone(&d), Arc::clone(&claims));
            shim::thread::spawn(n, move || {
                let mut grabbed = 0;
                for _ in 0..4 {
                    match d.steal() {
                        ModelSteal::Item(v) => {
                            assert_ne!(v, u64::MAX, "stole an uninitialised slot");
                            claims.lock().unwrap().push(v);
                            grabbed += 1;
                            if grabbed == 2 {
                                break;
                            }
                        }
                        ModelSteal::Empty => break,
                        ModelSteal::Retry => continue,
                    }
                }
            })
        };
        let t1 = spawn_thief("thief-1");
        let t2 = spawn_thief("thief-2");
        while let Some(v) = d.pop() {
            claims.lock().unwrap().push(v);
        }
        t1.join();
        t2.join();
        let got = claims.lock().unwrap().clone();
        for item in [10u64, 20] {
            assert_eq!(
                got.iter().filter(|&&v| v == item).count(),
                1,
                "item {item} claim count wrong; claims: {got:?}"
            );
        }
    }
}

/// Push racing a thief from the start (push not yet globally visible).
fn deque_push_vs_steal_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let d = Arc::new(ModelDeque::new(4, mutation));
        let t = {
            let d = Arc::clone(&d);
            shim::thread::spawn("thief", move || {
                for _ in 0..2 {
                    if let ModelSteal::Item(v) = d.steal() {
                        assert_ne!(v, u64::MAX, "stole an uninitialised slot");
                        break;
                    }
                }
            })
        };
        d.push(7);
        while d.pop().is_some() {}
        t.join();
    }
}

/// Batched steal: two thieves `steal_half` from a 3-item victim into
/// private deques of their own while the owner pops. The first claims of
/// the two batches race on the same `top` CAS — the window the
/// keep-on-CAS-fail mutant turns into a double claim. Every item must be
/// claimed exactly once across owner pops, batch firsts and dest drains.
fn deque_steal_half_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let d = Arc::new(ModelDeque::new(8, mutation));
        let claims = Arc::new(StdMutex::new(Vec::<u64>::new()));
        for item in [1u64, 2, 3] {
            d.push(item);
        }
        let spawn_thief = |n: &str| {
            let (d, claims) = (Arc::clone(&d), Arc::clone(&claims));
            shim::thread::spawn(n, move || {
                // Thief-private destination: the thief is its owner.
                let dest = ModelDeque::new(8, Mutation::None);
                for _ in 0..2 {
                    match d.steal_half(&dest) {
                        (ModelSteal::Item(v), _) => {
                            assert_ne!(v, u64::MAX, "stole an uninitialised slot");
                            claims.lock().unwrap().push(v);
                            break;
                        }
                        (ModelSteal::Empty, moved) | (ModelSteal::Retry, moved) => {
                            assert_eq!(moved, 0, "a miss must not move surplus");
                        }
                    }
                }
                while let Some(v) = dest.pop() {
                    assert_ne!(v, u64::MAX, "moved an uninitialised slot");
                    claims.lock().unwrap().push(v);
                }
            })
        };
        let t1 = spawn_thief("thief-1");
        let t2 = spawn_thief("thief-2");
        while let Some(v) = d.pop() {
            claims.lock().unwrap().push(v);
        }
        t1.join();
        t2.join();
        let got = claims.lock().unwrap().clone();
        for item in [1u64, 2, 3] {
            assert_eq!(
                got.iter().filter(|&&v| v == item).count(),
                1,
                "item {item} claim count wrong; claims: {got:?}"
            );
        }
    }
}

#[test]
fn deque_steal_vs_owner_pop_at_empty_ok() {
    wide().check("deque-1item", deque_one_item_scenario(Mutation::None));
}

#[test]
fn deque_two_items_two_thieves_ok() {
    wide().check("deque-2items", deque_two_items_scenario(Mutation::None));
}

#[test]
fn deque_push_vs_steal_ok() {
    wide().check("deque-push-steal", deque_push_vs_steal_scenario(Mutation::None));
}

#[test]
fn mutation_deque_pop_skip_fence_caught() {
    let fail = wide().find_failure(
        "deque-pop-skip-fence",
        deque_two_items_scenario(Mutation::DequePopSkipFence),
    );
    let fail = assert_caught("deque-pop-skip-fence", fail);
    assert_replays(&fail, deque_two_items_scenario(Mutation::DequePopSkipFence));
}

#[test]
fn mutation_deque_push_bottom_first_caught() {
    let fail = wide().find_failure(
        "deque-push-bottom-first",
        deque_push_vs_steal_scenario(Mutation::DequePushBottomFirst),
    );
    let fail = assert_caught("deque-push-bottom-first", fail);
    assert_replays(&fail, deque_push_vs_steal_scenario(Mutation::DequePushBottomFirst));
}

#[test]
fn mutation_deque_steal_skip_cas_caught() {
    let fail = wide().find_failure(
        "deque-steal-skip-cas",
        deque_one_item_scenario(Mutation::DequeStealSkipCas),
    );
    assert_caught("deque-steal-skip-cas", fail);
}

#[test]
fn deque_steal_half_ok() {
    wide().check("deque-steal-half", deque_steal_half_scenario(Mutation::None));
}

#[test]
fn mutation_deque_steal_half_keep_on_cas_fail_caught() {
    let fail = wide().find_failure(
        "deque-steal-half-keep-on-cas-fail",
        deque_steal_half_scenario(Mutation::DequeStealHalfKeepOnCasFail),
    );
    let fail = assert_caught("deque-steal-half-keep-on-cas-fail", fail);
    assert_replays(
        &fail,
        deque_steal_half_scenario(Mutation::DequeStealHalfKeepOnCasFail),
    );
}

// ---------------------------------------------------------------- parker

/// Scenario: notify-between-check-and-park. The completer flips `finished`
/// and notifies; the parker checks then parks. The permit must make every
/// interleaving terminate (a lost wakeup surfaces as deadlock).
fn parker_race_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let sig = Arc::new(ModelWakeSignal::new(mutation));
        let finished = Arc::new(shim::AtomicBool::named("finished", false));
        let t = {
            let (sig, finished) = (Arc::clone(&sig), Arc::clone(&finished));
            shim::thread::spawn("completer", move || {
                finished.store(true, SeqCst);
                sig.notify();
            })
        };
        while !finished.load(SeqCst) {
            sig.park();
        }
        t.join();
    }
}

/// Scenario: spurious-wake accounting of the `await_until_inner` loop. A
/// stray notify delivers no work; the deadline eventually fires. The
/// protocol's spurious count must equal ground truth in every schedule.
fn parker_spurious_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let sig = Arc::new(ModelWakeSignal::new(Mutation::None));
        let t = {
            let sig = Arc::clone(&sig);
            shim::thread::spawn("stray-waker", move || sig.notify())
        };
        let out = model_await(&sig, || false, || false, true, mutation);
        t.join();
        assert!(!out.finished);
        assert_eq!(
            out.spurious, out.actual_idle_wakes,
            "spurious accounting diverged from ground truth"
        );
    }
}

#[test]
fn parker_notify_between_check_and_park_ok() {
    // Small protocol: the DFS usually completes; either way no failure.
    wide().check("parker-race", parker_race_scenario(Mutation::None));
}

#[test]
fn parker_spurious_accounting_ok() {
    wide().check("parker-spurious", parker_spurious_scenario(Mutation::None));
}

#[test]
fn mutation_parker_notify_skip_permit_caught() {
    let fail = wide().find_failure(
        "parker-skip-permit",
        parker_race_scenario(Mutation::ParkerNotifySkipPermit),
    );
    let fail = assert_caught("parker-skip-permit", fail);
    assert!(fail.message.contains("deadlock"), "expected lost wakeup, got: {}", fail.message);
    assert_replays(&fail, parker_race_scenario(Mutation::ParkerNotifySkipPermit));
}

/// The pre-PR-6 `await_until_inner` bug, reproduced as a mutation: timeout
/// wakes cleared `woke_with_no_work`, under-counting spurious wakes.
#[test]
fn mutation_parker_timeout_not_spurious_caught() {
    let fail = wide().find_failure(
        "parker-timeout-not-spurious",
        parker_spurious_scenario(Mutation::ParkerTimeoutNotSpurious),
    );
    let fail = assert_caught("parker-timeout-not-spurious", fail);
    assert_replays(&fail, parker_spurious_scenario(Mutation::ParkerTimeoutNotSpurious));
}

// ------------------------------------------------------------- pool join

/// Scenario: leader publishes, waits done, then immediately retires the
/// frame (overwrites it). The worker's result write is its last touch of
/// the frame; `done` must order after it in every interleaving.
fn pool_join_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let slot = Arc::new(ModelSlot::new(mutation));
        let t = {
            let slot = Arc::clone(&slot);
            shim::thread::spawn("worker", move || {
                slot.worker_run();
            })
        };
        slot.publish(21);
        slot.wait_done();
        // The join is the leader's licence to reclaim the frame: the
        // worker's result must already be there...
        let v = slot.frame.load(SeqCst);
        assert_eq!(v, 42, "leader popped the frame before the worker's last touch");
        // ...and retiring it must not race a late worker write.
        slot.frame.store(NO_JOB, SeqCst);
        t.join();
        assert_eq!(slot.frame.load(SeqCst), NO_JOB, "late write into a retired frame");
    }
}

/// Back-to-back regions on one slot: exercises the done re-arm.
fn pool_two_jobs_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let slot = Arc::new(ModelSlot::new(mutation));
        let t = {
            let slot = Arc::clone(&slot);
            shim::thread::spawn("worker", move || {
                slot.worker_run();
                slot.worker_run();
            })
        };
        for job in [3u64, 4] {
            slot.publish(job);
            slot.wait_done();
            assert_eq!(slot.frame.load(SeqCst), job * 2, "stale frame after join");
        }
        t.join();
    }
}

/// Scenario: nested/concurrent leases must never alias a worker. Models
/// `with_workers`' hot-team take-out: the nested region leases fresh
/// because the outer one holds the cache contents.
fn pool_lease_scenario() -> impl Fn() + Send + Sync {
    move || {
        let pool = Arc::new(ModelPool::new());
        // Seed the idle pool the way a finished region's release would.
        pool.release(vec![100, 101]);
        let active = Arc::new(StdMutex::new(Vec::<u64>::new()));
        let claim = |active: &StdMutex<Vec<u64>>, team: &[u64]| {
            let mut a = active.lock().unwrap();
            for w in team {
                assert!(!a.contains(w), "worker {w} leased twice concurrently");
                a.push(*w);
            }
        };
        let unclaim = |active: &StdMutex<Vec<u64>>, team: &[u64]| {
            active.lock().unwrap().retain(|w| !team.contains(w));
        };
        let t = {
            let (pool, active) = (Arc::clone(&pool), Arc::clone(&active));
            shim::thread::spawn("peer-region", move || {
                let team = pool.lease(1);
                claim(&active, &team);
                shim::yield_now();
                unclaim(&active, &team);
                pool.release(team);
            })
        };
        // Outer region takes its team (hot cache modelled as taken out)...
        let outer = pool.lease(1);
        claim(&active, &outer);
        // ...and a nested region on the same thread leases afresh — the
        // cache is empty while the outer lease is live.
        let inner = pool.lease(1);
        claim(&active, &inner);
        assert!(
            inner.iter().all(|w| !outer.contains(w)),
            "nested region aliased the outer team: {outer:?} vs {inner:?}"
        );
        unclaim(&active, &inner);
        pool.release(inner);
        unclaim(&active, &outer);
        pool.release(outer);
        t.join();
    }
}

#[test]
fn pool_leader_join_vs_last_touch_ok() {
    wide().check("pool-join", pool_join_scenario(Mutation::None));
}

#[test]
fn pool_two_jobs_rearm_ok() {
    wide().check("pool-2jobs", pool_two_jobs_scenario(Mutation::None));
}

#[test]
fn pool_nested_lease_no_aliasing_ok() {
    wide().check("pool-nested-lease", pool_lease_scenario());
}

#[test]
fn mutation_pool_done_before_last_touch_caught() {
    let fail = wide().find_failure(
        "pool-done-early",
        pool_join_scenario(Mutation::PoolDoneBeforeLastTouch),
    );
    let fail = assert_caught("pool-done-early", fail);
    assert_replays(&fail, pool_join_scenario(Mutation::PoolDoneBeforeLastTouch));
}

#[test]
fn mutation_pool_publish_skip_notify_caught() {
    let fail = wide().find_failure(
        "pool-skip-notify",
        pool_join_scenario(Mutation::PoolPublishSkipNotify),
    );
    let fail = assert_caught("pool-skip-notify", fail);
    assert!(fail.message.contains("deadlock"), "expected lost wakeup, got: {}", fail.message);
}

// ----------------------------------------------------- injector shutdown

/// Scenario: shutdown-vs-post. A post accepted under the injector lock
/// happens-before the SeqCst shutdown read that gates the worker's final
/// drain, so `executed == accepted` must hold in every interleaving.
fn shutdown_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let inj = Arc::new(ModelInjector::new(mutation));
        let accepted = Arc::new(AtomicUsize::new(0));
        let worker = {
            let inj = Arc::clone(&inj);
            shim::thread::spawn("worker", move || inj.worker_loop())
        };
        let poster = {
            let (inj, accepted) = (Arc::clone(&inj), Arc::clone(&accepted));
            shim::thread::spawn("poster", move || {
                for job in [1u64, 2] {
                    if inj.post(job) {
                        accepted.fetch_add(1, StdOrd::SeqCst);
                    }
                }
            })
        };
        inj.shutdown();
        worker.join();
        poster.join();
        let acc = accepted.load(StdOrd::SeqCst);
        let exec = inj.executed.load(SeqCst);
        let rej = inj.rejected.load(SeqCst);
        assert_eq!(exec, acc, "accepted posts stranded at shutdown");
        assert_eq!(exec + rej, 2, "conservation law: executed + rejected == posted");
    }
}

#[test]
fn shutdown_vs_post_final_drain_ok() {
    wide().check("shutdown-drain", shutdown_scenario(Mutation::None));
}

// ------------------------------------------------------------ config cell

/// Scenario: a reader races two publishers through the snapshot cell. In
/// every interleaving a read must return a consistent (generation,
/// contents) pair — `payload == generation + 1` is the encoded contract —
/// and generations must be monotone per reader.
fn cell_torn_pair_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let cell = Arc::new(ModelConfigCell::new(4, mutation));
        let reader = {
            let cell = Arc::clone(&cell);
            shim::thread::spawn("reader", move || {
                let mut last_gen = 0;
                for _ in 0..3 {
                    let (generation, payload) = cell.read();
                    assert_eq!(
                        payload,
                        generation + 1,
                        "torn snapshot: generation {generation} with payload {payload}"
                    );
                    assert!(generation >= last_gen, "generation went backwards");
                    last_gen = generation;
                }
            })
        };
        let publisher = {
            let cell = Arc::clone(&cell);
            shim::thread::spawn("publisher-2", move || {
                cell.publish();
            })
        };
        cell.publish();
        reader.join();
        publisher.join();
        // Publishers serialize on the retire lock: exactly two generations.
        let (generation, payload) = cell.read();
        assert_eq!(generation, 2, "publisher serialization lost a generation");
        assert_eq!(payload, 3);
    }
}

#[test]
fn cell_publish_read_never_torn_ok() {
    wide().check("cell-torn-pair", cell_torn_pair_scenario(Mutation::None));
}

#[test]
fn mutation_cell_publish_ptr_first_caught() {
    let fail = wide().find_failure(
        "cell-ptr-first",
        cell_torn_pair_scenario(Mutation::CellPublishPtrFirst),
    );
    let fail = assert_caught("cell-ptr-first", fail);
    assert_replays(&fail, cell_torn_pair_scenario(Mutation::CellPublishPtrFirst));
}

// ---------------------------------------------------- worker retire drain

/// Scenario: a live shrink races a member that just posted regions onto
/// its own deque. The retiring worker must hand its deque to the injector
/// and cascade a wake, so both regions execute *before* any grow or
/// shutdown — a skipped drain strands them and every thread ends up
/// parked (deadlock).
fn retire_drain_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let pool = Arc::new(ModelRetirePool::new(2, 2, mutation));
        let w0 = {
            let pool = Arc::clone(&pool);
            shim::thread::spawn("worker-0", move || pool.run_loop(0))
        };
        let w1 = {
            let pool = Arc::clone(&pool);
            shim::thread::spawn("worker-1", move || {
                pool.push_local(1, 10);
                pool.push_local(1, 20);
                pool.run_loop(1)
            })
        };
        pool.resize(1);
        // Both regions must complete on the surviving worker (or on the
        // retiree itself, if it won the race to run them before retiring).
        pool.wait_done();
        pool.shutdown();
        w0.join();
        w1.join();
        assert_eq!(pool.executed.load(SeqCst), 2, "region lost across live shrink");
    }
}

/// Shrink-then-grow: the retired slot must revive on resize-grow and the
/// pool must still drain an injector post afterwards.
fn retire_regrow_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let pool = Arc::new(ModelRetirePool::new(2, 1, mutation));
        let w0 = {
            let pool = Arc::clone(&pool);
            shim::thread::spawn("worker-0", move || pool.run_loop(0))
        };
        let w1 = {
            let pool = Arc::clone(&pool);
            shim::thread::spawn("worker-1", move || {
                pool.push_local(1, 30);
                pool.run_loop(1)
            })
        };
        pool.resize(1);
        pool.resize(2);
        pool.wait_done();
        pool.shutdown();
        w0.join();
        w1.join();
        assert_eq!(pool.executed.load(SeqCst), 1);
    }
}

#[test]
fn retire_drain_no_lost_regions_ok() {
    wide().check("retire-drain", retire_drain_scenario(Mutation::None));
}

#[test]
fn retire_shrink_grow_revives_ok() {
    wide().check("retire-regrow", retire_regrow_scenario(Mutation::None));
}

#[test]
fn mutation_retire_skip_drain_caught() {
    let fail = wide().find_failure(
        "retire-skip-drain",
        retire_drain_scenario(Mutation::RetireSkipDrain),
    );
    let fail = assert_caught("retire-skip-drain", fail);
    assert!(fail.message.contains("deadlock"), "expected stranded regions, got: {}", fail.message);
    assert_replays(&fail, retire_drain_scenario(Mutation::RetireSkipDrain));
}

#[test]
fn mutation_shutdown_skip_final_drain_caught() {
    let fail = wide().find_failure(
        "shutdown-skip-drain",
        shutdown_scenario(Mutation::ShutdownSkipFinalDrain),
    );
    let fail = assert_caught("shutdown-skip-drain", fail);
    assert_replays(&fail, shutdown_scenario(Mutation::ShutdownSkipFinalDrain));
}
