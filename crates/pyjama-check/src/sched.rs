//! The deterministic scheduler behind every check run.
//!
//! A run executes the checked closure on **virtual threads**: real OS
//! threads that only ever run one at a time, passing a baton at every
//! instrumented operation (atomic access, lock, condvar, spawn/join,
//! explicit yield). Holding the baton means holding the run's global lock,
//! so each shim operation executes atomically and the interleaving of a run
//! is fully described by the sequence of *choices* the scheduler made at
//! each baton handoff.
//!
//! Choices are recorded as `(picked, out_of)` pairs. Replaying a run is
//! feeding the recorded `picked` sequence back in as a prefix — same
//! choices, same interleaving, same outcome (the checked closure must be
//! deterministic apart from scheduling, which the shims enforce for all
//! shared state). The DFS explorer walks the choice tree by next-sibling
//! backtracking over these vectors; the random explorer draws them from a
//! seeded SplitMix64.
//!
//! ## Failure modes detected
//!
//! * a panic (assertion) on any virtual thread,
//! * deadlock: no thread runnable, at least one not finished — this is how
//!   lost wakeups surface,
//! * op-budget exhaustion: a schedule exceeding `max_ops` operations is
//!   reported as a livelock.
//!
//! On failure the run aborts: every other virtual thread is unwound with a
//! private [`Abort`] panic payload (suppressed from stderr by a panic-hook
//! filter), the OS threads are joined, and the recorded choices + operation
//! trace become the report.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, Once};

/// Sentinel for "no thread" in baton / mutex-owner fields.
pub(crate) const NOBODY: usize = usize::MAX;

/// Panic payload used to unwind virtual threads when a run aborts. Never
/// escapes the crate: every vthread wrapper catches it silently.
pub(crate) struct Abort;

/// Storage cell of one shim atomic variable. The value is only ever touched
/// while holding the execution lock, so `Relaxed` is enough; the inner
/// atomic exists purely to make the cell `Sync` without `unsafe`.
pub(crate) struct VarCell {
    pub(crate) name: String,
    pub(crate) val: AtomicU64,
}

impl VarCell {
    pub(crate) fn new(name: String, init: u64) -> Arc<Self> {
        Arc::new(VarCell { name, val: AtomicU64::new(init) })
    }
    pub(crate) fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }
    pub(crate) fn set(&self, v: u64) {
        self.val.store(v, Ordering::Relaxed)
    }
    /// Identity used to key mutex/condvar waiter lists.
    pub(crate) fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }
}

/// Why a virtual thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocked {
    /// Waiting to acquire a shim mutex (keyed by its cell id).
    Mutex { id: usize },
    /// Waiting on a shim condvar; `timed` waits can be resumed by a
    /// scheduler-chosen timeout, untimed ones only by a notify.
    Condvar { cv: usize, timed: bool, seq: u64 },
    /// Waiting for another virtual thread to finish.
    Join { target: usize },
}

pub(crate) enum RunState {
    Runnable,
    Blocked(Blocked),
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) name: String,
    pub(crate) run: RunState,
    /// TSO store buffer: FIFO of pending (cell, value) global commits. A
    /// `Relaxed`/`Release` store parks here and becomes visible to *other*
    /// threads only at this thread's next flush point (any SeqCst access,
    /// RMW, fence, lock/condvar op, or thread exit). The owning thread
    /// always reads its own newest buffered value (store forwarding).
    pub(crate) buffer: Vec<(Arc<VarCell>, u64)>,
    /// Set when released from a condvar wait by a notify (vs a timeout).
    pub(crate) notified: bool,
}

/// One recorded scheduling decision: `picked` out of `n` candidates.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoiceRec {
    pub(crate) picked: usize,
    pub(crate) n: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Follow the prefix, then always take candidate 0 (DFS leftmost walk).
    Dfs,
    /// Follow the prefix, then draw from the seeded RNG.
    Random,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    /// Which vthread holds the baton ([`NOBODY`] when between runs/aborted).
    pub(crate) current: usize,
    pub(crate) choices: Vec<ChoiceRec>,
    pub(crate) prefix: Vec<usize>,
    pub(crate) mode: Mode,
    rng: u64,
    pub(crate) trace: Vec<(usize, String)>,
    pub(crate) ops: usize,
    max_ops: usize,
    pub(crate) failure: Option<String>,
    pub(crate) abort: bool,
    cv_seq: u64,
}

pub(crate) struct Execution {
    m: OsMutex<ExecState>,
    cv: OsCondvar,
    /// OS handles of every vthread of this run, joined by `run_once`.
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// (execution, my vthread id) — set for the lifetime of a vthread.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// True when the calling OS thread is a checker virtual thread. Used by the
/// panic-hook filter to keep expected (captured) panics off stderr.
pub(crate) fn in_vthread() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Runs `f` with the calling vthread's execution context. Panics with a
/// clear message when a shim type is used outside a checker run.
pub(crate) fn with_exec<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let (exec, me) = ctx.expect(
        "pyjama-check shim used outside a Checker run: shim atomics/locks only \
         work inside Checker::check / check! closures",
    );
    f(&exec, me)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Commits thread `me`'s store buffer to global memory, oldest first.
pub(crate) fn flush_buffer(st: &mut ExecState, me: usize) {
    let pending = std::mem::take(&mut st.threads[me].buffer);
    if !pending.is_empty() {
        let n = pending.len();
        for (cell, v) in pending {
            cell.set(v);
        }
        st.trace.push((me, format!("commit {n} buffered store(s)")));
    }
}

/// Reads `cell` as thread `me` sees it: newest own buffered store wins
/// (store forwarding), else global memory.
pub(crate) fn read_var(st: &ExecState, me: usize, cell: &Arc<VarCell>) -> u64 {
    st.threads[me]
        .buffer
        .iter()
        .rev()
        .find(|(c, _)| Arc::ptr_eq(c, cell))
        .map(|(_, v)| *v)
        .unwrap_or_else(|| cell.get())
}

enum Cand {
    Run(usize),
    /// Fire the timeout of a timed condvar waiter.
    Timeout(usize),
    /// Commit the oldest buffered store of one thread to global memory.
    /// TSO store buffers drain asynchronously; making each single-store
    /// drain a scheduler choice is what lets a thief observe a published
    /// index before the slot write that program-order preceded it.
    Drain(usize),
}

impl Execution {
    pub(crate) fn new(
        mode: Mode,
        prefix: Vec<usize>,
        seed: u64,
        max_ops: usize,
    ) -> Arc<Self> {
        Arc::new(Execution {
            m: OsMutex::new(ExecState {
                threads: Vec::new(),
                current: NOBODY,
                choices: Vec::new(),
                prefix,
                mode,
                rng: seed,
                trace: Vec::new(),
                ops: 0,
                max_ops,
                failure: None,
                abort: false,
                cv_seq: 0,
            }),
            cv: OsCondvar::new(),
            handles: OsMutex::new(Vec::new()),
        })
    }

    /// Locks the run state, recovering from poison (vthreads unwind while
    /// holding this lock by design).
    pub(crate) fn lock(&self) -> OsGuard<'_, ExecState> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one scheduling decision with `n` candidates and returns the
    /// pick. Prefix choices replay verbatim; past the prefix, DFS takes the
    /// leftmost branch and Random draws from the seeded RNG.
    pub(crate) fn decide(&self, st: &mut ExecState, n: usize) -> usize {
        debug_assert!(n >= 1);
        let k = st.choices.len();
        let picked = if k < st.prefix.len() {
            st.prefix[k].min(n - 1)
        } else {
            match st.mode {
                Mode::Dfs => 0,
                Mode::Random => (splitmix(&mut st.rng) % n as u64) as usize,
            }
        };
        st.choices.push(ChoiceRec { picked, n });
        picked
    }

    /// Marks the run failed (first failure wins) and aborts it: every
    /// vthread waiting for the baton unwinds via [`Abort`].
    pub(crate) fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        st.current = NOBODY;
        self.cv.notify_all();
    }

    /// Hands the baton to the next thread: collects candidates (runnable
    /// threads, then timed-waiter timeouts, then single-store buffer
    /// drains), records the choice, applies it. A drain candidate commits
    /// one buffered store and re-picks — it is an environment step, not a
    /// thread step. Declares deadlock when nothing can happen but
    /// unfinished threads remain.
    pub(crate) fn pick_next(&self, st: &mut ExecState) {
        if st.abort {
            st.current = NOBODY;
            self.cv.notify_all();
            return;
        }
        loop {
            let mut cands = Vec::new();
            for (i, t) in st.threads.iter().enumerate() {
                if matches!(t.run, RunState::Runnable) {
                    cands.push(Cand::Run(i));
                }
            }
            for (i, t) in st.threads.iter().enumerate() {
                if let RunState::Blocked(Blocked::Condvar { timed: true, .. }) = t.run {
                    cands.push(Cand::Timeout(i));
                }
            }
            for (i, t) in st.threads.iter().enumerate() {
                if !t.buffer.is_empty() {
                    cands.push(Cand::Drain(i));
                }
            }
            if cands.is_empty() {
                if st.threads.iter().all(|t| matches!(t.run, RunState::Finished)) {
                    st.current = NOBODY;
                    self.cv.notify_all();
                    return;
                }
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .filter(|t| !matches!(t.run, RunState::Finished))
                    .map(|t| {
                        // Deliberately avoids cell ids (pointer-derived, so
                        // unstable across runs): replay asserts compare this
                        // message verbatim.
                        let why = match &t.run {
                            RunState::Blocked(Blocked::Mutex { .. }) => "a mutex".to_string(),
                            RunState::Blocked(Blocked::Condvar { timed, seq, .. }) => {
                                format!("a condvar (timed: {timed}, wait #{seq})")
                            }
                            RunState::Blocked(Blocked::Join { target }) => {
                                format!("join of vthread {target}")
                            }
                            _ => "?".into(),
                        };
                        format!("'{}' on {}", t.name, why)
                    })
                    .collect();
                self.fail(
                    st,
                    format!("deadlock (lost wakeup?): blocked {}", blocked.join(", ")),
                );
                return;
            }
            let k = if cands.len() == 1 { 0 } else { self.decide(st, cands.len()) };
            match cands[k] {
                Cand::Run(i) => st.current = i,
                Cand::Timeout(i) => {
                    st.trace.push((i, "condvar wait times out".into()));
                    st.threads[i].run = RunState::Runnable;
                    st.threads[i].notified = false;
                    st.current = i;
                }
                Cand::Drain(i) => {
                    let (cell, v) = st.threads[i].buffer.remove(0);
                    st.trace.push((i, format!("drain buffered store {} = {}", cell.name, v)));
                    cell.set(v);
                    continue;
                }
            }
            break;
        }
        self.cv.notify_all();
    }

    /// Blocks the calling vthread until it holds the baton. Unwinds with
    /// [`Abort`] if the run aborts meanwhile (unless already unwinding, in
    /// which case it simply returns so Drop impls stay panic-free).
    pub(crate) fn wait_turn<'a>(
        &'a self,
        mut st: OsGuard<'a, ExecState>,
        me: usize,
    ) -> OsGuard<'a, ExecState> {
        loop {
            if st.abort {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.current == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The common prologue of every shim operation: charge the op budget and
    /// append `desc` to the trace. Call with the baton held.
    pub(crate) fn begin_op(&self, st: &mut ExecState, me: usize, desc: String) {
        st.ops += 1;
        if st.ops > st.max_ops {
            let max = st.max_ops;
            self.fail(
                st,
                format!("op budget exceeded ({max} ops): livelock, or raise Checker::max_ops"),
            );
            if !std::thread::panicking() {
                std::panic::panic_any(Abort);
            }
            return;
        }
        st.trace.push((me, desc));
    }

    /// Full scheduling point: begin an op, run its effect atomically, pass
    /// the baton, wait to be rescheduled. The workhorse of the atomic shims.
    pub(crate) fn op<R>(
        self: &Arc<Self>,
        me: usize,
        desc: impl FnOnce(&mut ExecState) -> String,
        effect: impl FnOnce(&mut ExecState) -> R,
    ) -> R {
        let mut st = self.lock();
        if st.abort {
            if std::thread::panicking() {
                return effect(&mut st);
            }
            drop(st);
            std::panic::panic_any(Abort);
        }
        let d = desc(&mut st);
        self.begin_op(&mut st, me, d);
        let r = effect(&mut st);
        self.pick_next(&mut st);
        let _st = self.wait_turn(st, me);
        r
    }

    /// Registers a new vthread and starts its OS thread; used by the run
    /// driver for thread 0 and by the thread shim for spawns.
    pub(crate) fn add_thread(
        self: &Arc<Self>,
        st: &mut ExecState,
        name: String,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let id = st.threads.len();
        st.threads.push(ThreadState {
            name: name.clone(),
            run: RunState::Runnable,
            buffer: Vec::new(),
            notified: false,
        });
        let exec = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("pjcheck-{name}"))
            .spawn(move || vthread_main(exec, id, f))
            .expect("failed to spawn checker vthread");
        self.handles.lock().unwrap_or_else(|e| e.into_inner()).push(h);
        id
    }

    pub(crate) fn next_cv_seq(&self, st: &mut ExecState) -> u64 {
        st.cv_seq += 1;
        st.cv_seq
    }

    /// Wakes every OS thread waiting on the run's condvar so it re-checks
    /// state. Used on paths that must not yield (Drop during unwinding).
    pub(crate) fn notify_everyone(&self) {
        self.cv.notify_all();
    }
}

/// Suppresses panic output from vthreads (their panics are captured and
/// reported by the checker); panics anywhere else keep the default hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_vthread() {
                prev(info);
            }
        }));
    });
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Body of every vthread OS thread: wait for the baton, run the closure,
/// then run the finish protocol (flush buffer, wake joiners, hand off).
fn vthread_main(exec: Arc<Execution>, me: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    {
        let st = exec.lock();
        let _st = exec.wait_turn(st, me);
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    let mut st = exec.lock();
    if let Err(p) = result {
        if p.downcast_ref::<Abort>().is_none() {
            let name = st.threads[me].name.clone();
            let msg = panic_message(p.as_ref());
            st.trace.push((me, format!("panicked: {msg}")));
            exec.fail(&mut st, format!("thread '{name}' panicked: {msg}"));
        }
    }
    flush_buffer(&mut st, me);
    st.threads[me].run = RunState::Finished;
    st.trace.push((me, "finished".into()));
    // Joiners of this thread become runnable.
    for t in st.threads.iter_mut() {
        if matches!(t.run, RunState::Blocked(Blocked::Join { target }) if target == me) {
            t.run = RunState::Runnable;
        }
    }
    if st.current == me {
        exec.pick_next(&mut st);
    } else {
        // Finished while not holding the baton (abort unwind): just make
        // sure everyone re-checks, including the run driver.
        exec.cv.notify_all();
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Outcome of one schedule.
pub(crate) struct RunOutcome {
    pub(crate) failure: Option<String>,
    pub(crate) choices: Vec<ChoiceRec>,
    pub(crate) trace: Vec<(usize, String)>,
    pub(crate) thread_names: Vec<String>,
}

/// Executes `f` once under the given mode/prefix/seed and returns what
/// happened. Joins every OS thread before returning, so runs never leak.
pub(crate) fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    mode: Mode,
    prefix: Vec<usize>,
    seed: u64,
    max_ops: usize,
) -> RunOutcome {
    install_quiet_hook();
    let exec = Execution::new(mode, prefix, seed, max_ops);
    {
        let mut st = exec.lock();
        let g = Arc::clone(&f);
        let id = exec.add_thread(&mut st, "main".into(), Box::new(move || g()));
        st.current = id;
        exec.cv.notify_all();
    }
    // Wait for every vthread to finish (normally or via abort unwinding).
    {
        let mut st = exec.lock();
        while !st.threads.iter().all(|t| matches!(t.run, RunState::Finished)) {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let mut st = exec.lock();
    RunOutcome {
        failure: st.failure.take(),
        choices: std::mem::take(&mut st.choices),
        trace: std::mem::take(&mut st.trace),
        thread_names: st.threads.iter().map(|t| t.name.clone()).collect(),

    }
}

/// Next DFS prefix after a run made `choices`: rightmost incrementable
/// decision (below `depth_cap`) bumps by one, everything after it resets.
/// `None` when the tree is exhausted.
pub(crate) fn dfs_advance(choices: &[ChoiceRec], depth_cap: usize) -> Option<Vec<usize>> {
    let limit = choices.len().min(depth_cap);
    for i in (0..limit).rev() {
        if choices[i].picked + 1 < choices[i].n {
            let mut p: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
            p.push(choices[i].picked + 1);
            return Some(p);
        }
    }
    None
}
