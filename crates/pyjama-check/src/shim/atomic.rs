//! Instrumented atomics with TSO store-buffer semantics (see module docs of
//! [`crate::shim`]).
//!
//! The ordering table, applied uniformly:
//!
//! | operation                | effect                                        |
//! |--------------------------|-----------------------------------------------|
//! | load (Relaxed/Acquire)   | own buffer (forwarding) else global           |
//! | load (SeqCst)            | flush own buffer, then global                 |
//! | store (Relaxed/Release)  | append to own FIFO buffer                     |
//! | store (SeqCst)           | flush own buffer, then global store           |
//! | any RMW / CAS            | flush own buffer, then atomic global op       |
//! | fence (SeqCst)           | flush own buffer                              |
//! | fence (Acquire/Release)  | no-op (TSO)                                   |

use std::sync::Arc;

pub use std::sync::atomic::Ordering;

use crate::sched::{self, flush_buffer, read_var, VarCell};

fn is_seqcst(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

fn ord_tag(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "rlx",
        Ordering::Acquire => "acq",
        Ordering::Release => "rel",
        Ordering::AcqRel => "acqrel",
        Ordering::SeqCst => "sc",
        _ => "?",
    }
}

/// The shared raw-u64 implementation behind every shim atomic type.
#[derive(Clone)]
pub struct AtomicU64 {
    cell: Arc<VarCell>,
}

impl AtomicU64 {
    pub fn new(v: u64) -> Self {
        Self::named("atomic", v)
    }

    /// Names show up in operation traces; give protocol fields their real
    /// names (`"deque.bottom"`, `"slot.done"`, …).
    pub fn named(name: &str, v: u64) -> Self {
        AtomicU64 { cell: VarCell::new(name.to_string(), v) }
    }

    pub fn load(&self, o: Ordering) -> u64 {
        sched::with_exec(|exec, me| {
            exec.op(
                me,
                |st| {
                    let v = read_var(st, me, &self.cell);
                    format!("load.{} {} -> {}", ord_tag(o), self.cell.name, v)
                },
                |st| {
                    if is_seqcst(o) {
                        flush_buffer(st, me);
                    }
                    read_var(st, me, &self.cell)
                },
            )
        })
    }

    pub fn store(&self, v: u64, o: Ordering) {
        sched::with_exec(|exec, me| {
            exec.op(
                me,
                |_| {
                    let how = if is_seqcst(o) { "" } else { " [buffered]" };
                    format!("store.{} {} = {}{}", ord_tag(o), self.cell.name, v, how)
                },
                |st| {
                    if is_seqcst(o) {
                        flush_buffer(st, me);
                        self.cell.set(v);
                    } else {
                        st.threads[me].buffer.push((Arc::clone(&self.cell), v));
                    }
                },
            )
        })
    }

    pub fn swap(&self, v: u64, _o: Ordering) -> u64 {
        self.rmw("swap", move |_| v)
    }

    pub fn fetch_add(&self, d: u64, _o: Ordering) -> u64 {
        self.rmw("fetch_add", move |old| old.wrapping_add(d))
    }

    pub fn fetch_sub(&self, d: u64, _o: Ordering) -> u64 {
        self.rmw("fetch_sub", move |old| old.wrapping_sub(d))
    }

    /// All RMWs flush and act on global memory regardless of ordering
    /// (locked instructions drain the store buffer on every TSO machine).
    fn rmw(&self, what: &str, f: impl FnOnce(u64) -> u64) -> u64 {
        sched::with_exec(|exec, me| {
            exec.op(
                me,
                |_| format!("{what} {}", self.cell.name),
                |st| {
                    flush_buffer(st, me);
                    let old = self.cell.get();
                    self.cell.set(f(old));
                    old
                },
            )
        })
    }

    pub fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        sched::with_exec(|exec, me| {
            exec.op(
                me,
                |_| format!("cas {} {}->{}", self.cell.name, expected, new),
                |st| {
                    flush_buffer(st, me);
                    let old = self.cell.get();
                    if old == expected {
                        self.cell.set(new);
                        st.trace.push((me, format!("  cas {} won", self.cell.name)));
                        Ok(old)
                    } else {
                        st.trace
                            .push((me, format!("  cas {} lost (saw {})", self.cell.name, old)));
                        Err(old)
                    }
                },
            )
        })
    }
}

/// A memory fence at a scheduling point. Only `SeqCst` has an effect under
/// TSO: it commits the calling thread's store buffer.
pub fn fence(o: Ordering) {
    sched::with_exec(|exec, me| {
        exec.op(
            me,
            |_| format!("fence.{}", ord_tag(o)),
            |st| {
                if is_seqcst(o) {
                    flush_buffer(st, me);
                }
            },
        )
    })
}

macro_rules! wrapper_atomic {
    ($name:ident, $ty:ty, $to:expr, $from:expr) => {
        #[derive(Clone)]
        pub struct $name {
            raw: AtomicU64,
        }

        impl $name {
            pub fn new(v: $ty) -> Self {
                $name { raw: AtomicU64::new(($to)(v)) }
            }
            pub fn named(name: &str, v: $ty) -> Self {
                $name { raw: AtomicU64::named(name, ($to)(v)) }
            }
            pub fn load(&self, o: Ordering) -> $ty {
                ($from)(self.raw.load(o))
            }
            pub fn store(&self, v: $ty, o: Ordering) {
                self.raw.store(($to)(v), o)
            }
            pub fn swap(&self, v: $ty, o: Ordering) -> $ty {
                ($from)(self.raw.swap(($to)(v), o))
            }
            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                s: Ordering,
                f: Ordering,
            ) -> Result<$ty, $ty> {
                self.raw
                    .compare_exchange(($to)(expected), ($to)(new), s, f)
                    .map($from)
                    .map_err($from)
            }
        }
    };
}

wrapper_atomic!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0);
wrapper_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
wrapper_atomic!(AtomicIsize, isize, |v: isize| v as u64, |v: u64| v as i64 as isize);

impl AtomicUsize {
    pub fn fetch_add(&self, d: usize, o: Ordering) -> usize {
        self.raw.fetch_add(d as u64, o) as usize
    }
    pub fn fetch_sub(&self, d: usize, o: Ordering) -> usize {
        self.raw.fetch_sub(d as u64, o) as usize
    }
}

impl AtomicIsize {
    pub fn fetch_add(&self, d: isize, o: Ordering) -> isize {
        self.raw.fetch_add(d as u64, o) as i64 as isize
    }
}
