//! Instrumented stand-ins for `std::sync::atomic`, `Mutex`/`Condvar` and
//! `std::thread`, usable only inside a [`Checker`](crate::Checker) run.
//!
//! Every operation is a scheduling point: it executes atomically while the
//! calling virtual thread holds the run's baton, is appended to the
//! operation trace, and then hands the baton to a scheduler-chosen thread.
//!
//! ## Memory model: TSO store buffers
//!
//! The shims model **total store order** (x86-class) rather than full C11
//! weak memory: a `Relaxed` or `Release` store parks in the storing
//! thread's FIFO buffer and becomes globally visible either at that
//! thread's next flush point — a SeqCst access, any read-modify-write, a
//! SeqCst fence, any lock/condvar operation, or thread exit — or when the
//! scheduler chooses to drain it: single-store FIFO drains are scheduling
//! candidates, modelling TSO's asynchronous buffer drain. Loads forward
//! from the thread's own buffer first. This makes the reorderings TSO
//! permits really happen when an ordering is weakened: store→load (the
//! Dekker/eventcount hazard, via delayed drain) and delayed-visibility
//! races between two buffered stores (via partial drain). Load→load
//! reordering and other non-TSO weak-memory behaviours are *not* modelled
//! (a documented limitation; see DESIGN.md §5h).

pub mod atomic;
pub mod sync;
pub mod thread;

pub use atomic::{fence, AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
pub use sync::{Condvar, Mutex, MutexGuard};

use crate::sched;

/// A scheduler-resolved boolean: the explorer tries both arms. Use it to
/// model environment nondeterminism that is not a thread interleaving —
/// e.g. "had the deadline already passed on entry?".
pub fn nondet(label: &str) -> bool {
    sched::with_exec(|exec, me| {
        exec.op(
            me,
            |_| format!("nondet({label})"),
            |st| exec.decide(st, 2) == 1,
        )
    })
}

/// Explicit scheduling point with no memory effect. Spin-wait loops in
/// ported code call this so other threads can run between probes.
pub fn yield_now() {
    sched::with_exec(|exec, me| exec.op(me, |_| "yield".into(), |_| ()))
}
