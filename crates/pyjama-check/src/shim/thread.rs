//! Virtual-thread spawn/join. A spawned closure runs on a real OS thread,
//! but scheduling is entirely baton-driven: it executes only when the
//! scheduler picks it, one shim operation at a time.
//!
//! Every virtual thread must terminate for a schedule to complete — a
//! spawned thread that can block forever shows up as a deadlock failure,
//! exactly like loom. `JoinHandle::join` is a blocking scheduling point.

use crate::sched::{self, Blocked, RunState};

pub struct JoinHandle {
    id: usize,
}

/// Spawns a named virtual thread. The name appears in operation traces and
/// failure reports.
pub fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    sched::with_exec(|exec, me| {
        let mut st = exec.lock();
        exec.begin_op(&mut st, me, format!("spawn '{name}'"));
        sched::flush_buffer(&mut st, me);
        let id = exec.add_thread(&mut st, name.to_string(), Box::new(f));
        exec.pick_next(&mut st);
        let _st = exec.wait_turn(st, me);
        JoinHandle { id }
    })
}

impl JoinHandle {
    /// Blocks until the target virtual thread finishes. A panic on the
    /// target aborts the whole run (the checker reports it), so join never
    /// returns an error.
    pub fn join(self) {
        sched::with_exec(|exec, me| {
            let mut st = exec.lock();
            st = exec.wait_turn(st, me);
            exec.begin_op(&mut st, me, format!("join vthread {}", self.id));
            sched::flush_buffer(&mut st, me);
            if !matches!(st.threads[self.id].run, RunState::Finished) {
                st.threads[me].run = RunState::Blocked(Blocked::Join { target: self.id });
            }
            exec.pick_next(&mut st);
            let _st = exec.wait_turn(st, me);
        })
    }
}
