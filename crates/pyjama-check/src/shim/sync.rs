//! Instrumented `Mutex` and `Condvar` with parking_lot-shaped APIs (the
//! ported protocols use parking_lot): `Condvar::wait(&self, &mut guard)`
//! mutates the guard in place, and the timed wait reports timeout as a
//! plain bool.
//!
//! Lock acquisition, release, waiting and notification are all scheduling
//! points. A contended lock blocks the virtual thread; unlock makes every
//! contender runnable again and they re-race under scheduler control, so
//! lock handoff order is explored, not fixed. `notify_one` wakes the
//! longest-waiting thread (FIFO, like parking_lot's fairness direction);
//! timed waits can additionally be resumed by a scheduler-chosen timeout at
//! any moment, which is how "wake vs deadline" races are explored.
//!
//! Every lock/condvar operation is a TSO flush point for the calling
//! thread's store buffer.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::sched::{self, flush_buffer, Blocked, RunState, VarCell, NOBODY};

pub struct Mutex<T> {
    /// Holds the owning vthread id (or [`NOBODY`]); doubles as identity for
    /// the waiter list.
    ctl: Arc<VarCell>,
    data: UnsafeCell<T>,
}

// Safety: `data` is only touched through a guard, and guards only exist on
// the vthread that holds both the shim lock and (transitively) the run's
// baton — all access is serialized by the scheduler.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Self::named("mutex", v)
    }

    pub fn named(name: &str, v: T) -> Self {
        Mutex {
            ctl: VarCell::new(name.to_string(), NOBODY as u64),
            data: UnsafeCell::new(v),
        }
    }

    /// Blocks (the virtual thread) until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        sched::with_exec(|exec, me| {
            loop {
                let mut st = exec.lock();
                st = exec.wait_turn(st, me);
                if self.ctl.get() == NOBODY as u64 {
                    exec.begin_op(&mut st, me, format!("lock {}", self.ctl.name));
                    self.ctl.set(me as u64);
                    flush_buffer(&mut st, me);
                    exec.pick_next(&mut st);
                    let _st = exec.wait_turn(st, me);
                    return MutexGuard { m: self };
                }
                exec.begin_op(&mut st, me, format!("lock {} (contended)", self.ctl.name));
                st.threads[me].run = RunState::Blocked(Blocked::Mutex { id: self.ctl.id() });
                exec.pick_next(&mut st);
                let _st = exec.wait_turn(st, me);
                // Woken by an unlock: loop and re-race for the lock.
            }
        })
    }

    /// Releases the lock and wakes every contender (they re-race).
    fn unlock(&self, during_unwind: bool) {
        sched::with_exec(|exec, me| {
            let mut st = exec.lock();
            if self.ctl.get() != me as u64 {
                // Only reachable when an aborting run unwound out of a
                // condvar wait after the wait released the mutex: the
                // caller's guard drops without owning anything.
                debug_assert!(
                    during_unwind || st.abort,
                    "unlock {} by non-owner",
                    self.ctl.name
                );
                exec.notify_everyone();
                return;
            }
            self.ctl.set(NOBODY as u64);
            let id = self.ctl.id();
            for t in st.threads.iter_mut() {
                if matches!(t.run, RunState::Blocked(Blocked::Mutex { id: i }) if i == id) {
                    t.run = RunState::Runnable;
                }
            }
            flush_buffer(&mut st, me);
            if during_unwind || st.abort {
                // Never yield (or panic) out of a Drop that runs while the
                // run is unwinding; just hand visibility to everyone.
                exec.notify_everyone();
                return;
            }
            exec.begin_op(&mut st, me, format!("unlock {}", self.ctl.name));
            exec.pick_next(&mut st);
            let _st = exec.wait_turn(st, me);
        })
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.m.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.m.unlock(std::thread::panicking());
    }
}

pub struct Condvar {
    /// Identity only; the value is unused.
    ctl: Arc<VarCell>,
}

impl Condvar {
    pub fn new() -> Self {
        Self::named("condvar")
    }

    pub fn named(name: &str) -> Self {
        Condvar { ctl: VarCell::new(name.to_string(), 0) }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires the mutex. No spontaneous wakeups: an untimed wait
    /// only ever returns after a notify — a protocol that loses its last
    /// notify therefore deadlocks, which the checker reports.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, false);
    }

    /// Like [`wait`](Self::wait) but the scheduler may also resume it as a
    /// timeout at any point (modelling `wait_until` with an arbitrary
    /// deadline). Returns `true` when resumed by the timeout.
    pub fn wait_timed<T>(&self, guard: &mut MutexGuard<'_, T>) -> bool {
        self.wait_inner(guard, true)
    }

    fn wait_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> bool {
        let mutex = guard.m;
        sched::with_exec(|exec, me| {
            let mut st = exec.lock();
            let tag = if timed { " (timed)" } else { "" };
            exec.begin_op(&mut st, me, format!("cv wait {}{}", self.ctl.name, tag));
            // Release the mutex exactly like unlock, but without yielding —
            // the wait itself is the scheduling point.
            debug_assert_eq!(mutex.ctl.get(), me as u64, "wait with unowned mutex");
            mutex.ctl.set(NOBODY as u64);
            let mid = mutex.ctl.id();
            for t in st.threads.iter_mut() {
                if matches!(t.run, RunState::Blocked(Blocked::Mutex { id: i }) if i == mid) {
                    t.run = RunState::Runnable;
                }
            }
            flush_buffer(&mut st, me);
            let seq = exec.next_cv_seq(&mut st);
            st.threads[me].run =
                RunState::Blocked(Blocked::Condvar { cv: self.ctl.id(), timed, seq });
            st.threads[me].notified = false;
            exec.pick_next(&mut st);
            st = exec.wait_turn(st, me);
            let notified = st.threads[me].notified;
            drop(st);
            // Reacquire before returning, racing other contenders.
            let reacquired = mutex.lock();
            std::mem::forget(reacquired); // the caller's guard stays the owner
            !notified
        })
    }

    /// Wakes the longest-waiting thread on this condvar, if any.
    pub fn notify_one(&self) {
        self.notify(false)
    }

    /// Wakes every thread waiting on this condvar.
    pub fn notify_all(&self) {
        self.notify(true)
    }

    fn notify(&self, all: bool) {
        sched::with_exec(|exec, me| {
            exec.op(
                me,
                |_| {
                    format!(
                        "cv notify_{} {}",
                        if all { "all" } else { "one" },
                        self.ctl.name
                    )
                },
                |st| {
                    flush_buffer(st, me);
                    let id = self.ctl.id();
                    let mut waiters: Vec<(u64, usize)> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter_map(|(i, t)| match t.run {
                            RunState::Blocked(Blocked::Condvar { cv, seq, .. }) if cv == id => {
                                Some((seq, i))
                            }
                            _ => None,
                        })
                        .collect();
                    waiters.sort_unstable();
                    let take = if all { waiters.len() } else { waiters.len().min(1) };
                    for &(_, i) in waiters.iter().take(take) {
                        st.threads[i].run = RunState::Runnable;
                        st.threads[i].notified = true;
                    }
                },
            )
        })
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
