//! Hand-rolled JSON emission for machine-readable bench artifacts.
//!
//! The bench harnesses write human tables (`bench_results/*.txt`) and raw
//! CSVs (`bench_results/*.csv`); dashboards and regression bots want one
//! small JSON document with just the headline numbers. This module builds
//! that document without a serde dependency: the values are flat
//! (strings/numbers/nested objects), so a tiny escaping writer is enough.
//!
//! [`fold_headlines`] re-reads the *existing* CSV artifacts and extracts
//! one headline metric per experiment, so the emitted document summarises
//! the whole `bench_results/` directory, not only the bench that wrote it.
//! Missing CSVs are skipped — the folder is grown incrementally and a
//! partial checkout must not fail the writing bench.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON object under construction. Keys are emitted in insertion order.
#[derive(Default)]
pub struct JsonObj {
    body: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", quote(key), quote(value));
        self
    }

    /// Adds a numeric field. Non-finite values are emitted as `null`
    /// (JSON has no NaN/Infinity).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            // Trim to a stable short form: integers stay integral.
            if value == value.trunc() && value.abs() < 1e15 {
                let _ = write!(self.body, "{}:{}", quote(key), value as i64);
            } else {
                let _ = write!(self.body, "{}:{:.4}", quote(key), value);
            }
        } else {
            let _ = write!(self.body, "{}:null", quote(key));
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", quote(key), value);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", quote(key), value);
        self
    }

    /// Adds a nested object field.
    pub fn obj(&mut self, key: &str, value: JsonObj) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", quote(key), value.finish());
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Quotes and escapes a JSON string.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reads one CSV and returns `(header, rows)` split on commas. Returns
/// `None` when the file is missing or empty.
fn read_csv(path: &Path) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header: Vec<String> = lines.next()?.split(',').map(str::to_string).collect();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    Some((header, rows))
}

/// Column value of `row` under `name`, parsed as f64.
fn col(header: &[String], row: &[String], name: &str) -> Option<f64> {
    let i = header.iter().position(|h| h == name)?;
    row.get(i)?.parse().ok()
}

/// Folds the headline number of every known CSV artifact in `dir` into one
/// JSON object. Each experiment contributes the single figure its gate is
/// written against; absent files contribute nothing.
pub fn fold_headlines(dir: &Path) -> JsonObj {
    let mut out = JsonObj::new();

    // pj_vm.csv: the VM-vs-interpreter gate is a minimum speedup across the
    // `>=10`-gated kernels.
    if let Some((h, rows)) = read_csv(&dir.join("pj_vm.csv")) {
        let min = rows
            .iter()
            .filter(|r| r.last().is_some_and(|g| g.starts_with(">=")))
            .filter_map(|r| col(&h, r, "speedup"))
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            out.num("pj_vm_min_speedup", min);
        }
    }

    // c10k.csv: sustained request throughput of the reactor experiment.
    if let Some((h, rows)) = read_csv(&dir.join("c10k.csv")) {
        if let Some(v) = rows.first().and_then(|r| col(&h, r, "throughput_rps")) {
            out.num("c10k_throughput_rps", v);
        }
    }

    // overload_shed.csv: gate,metric,value triplets — the hot-read cost.
    if let Some((_, rows)) = read_csv(&dir.join("overload_shed.csv")) {
        for r in &rows {
            if r.len() == 3 && r[0] == "read" && r[1] == "ns_per_op" {
                if let Ok(v) = r[2].parse() {
                    out.num("config_read_ns_per_op", v);
                }
            }
        }
    }

    // fig9_http_throughput.csv: best pyjama-variant request rate.
    if let Some((h, rows)) = read_csv(&dir.join("fig9_http_throughput.csv")) {
        let best = rows
            .iter()
            .filter(|r| r.first().is_some_and(|v| v == "pyjama"))
            .filter_map(|r| col(&h, r, "throughput_rps"))
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            out.num("http_pyjama_peak_rps", best);
        }
    }

    // post_hotpath.csv: the recycled-vs-fresh posting speedup at the gate
    // worker count (written by the same bench that calls this fold).
    if let Some((h, rows)) = read_csv(&dir.join("post_hotpath.csv")) {
        let gate = rows
            .iter()
            .filter(|r| r.first().is_some_and(|v| v == "recycled"))
            .filter_map(|r| col(&h, r, "speedup"))
            .fold(f64::NEG_INFINITY, f64::max);
        if gate.is_finite() {
            out.num("post_hotpath_speedup", gate);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_and_nested_objects() {
        let mut inner = JsonObj::new();
        inner.uint("n", 3).bool("ok", true);
        let mut o = JsonObj::new();
        o.str("name", "post_hotpath").num("x", 1.5).obj("inner", inner);
        assert_eq!(
            o.finish(),
            r#"{"name":"post_hotpath","x":1.5000,"inner":{"n":3,"ok":true}}"#
        );
    }

    #[test]
    fn integral_floats_stay_integral_and_nonfinite_is_null() {
        let mut o = JsonObj::new();
        o.num("i", 4.0).num("bad", f64::NAN);
        assert_eq!(o.finish(), r#"{"i":4,"bad":null}"#);
    }

    #[test]
    fn escapes_control_characters() {
        let mut o = JsonObj::new();
        o.str("k", "a\"b\\c\nd");
        assert_eq!(o.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn folds_known_csvs_and_skips_missing() {
        let dir = std::env::temp_dir().join("pj_perfjson_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("pj_vm.csv"),
            "kernel,vm_ms,interp_ms,speedup,gate\nfib,1.0,15.0,15.0,>=10\nslow,2.0,2.2,1.1,<=1.5x-slowdown\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("post_hotpath.csv"),
            "arm,workers,posts,ns_per_post,allocs_per_post,speedup\nrecycled,4,1000,800,0.00,1.45\nfresh,4,1000,1160,4.10,1.00\n",
        )
        .unwrap();
        let _ = std::fs::remove_file(dir.join("c10k.csv"));
        let json = fold_headlines(&dir).finish();
        assert!(json.contains("\"pj_vm_min_speedup\":15"), "{json}");
        assert!(json.contains("\"post_hotpath_speedup\":1.45"), "{json}");
        assert!(!json.contains("c10k"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
