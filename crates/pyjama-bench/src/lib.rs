//! Benchmark harnesses regenerating the paper's evaluation (§V).
//!
//! * [`gui`] — the §V-A GUI event-handling experiment: events fired at a
//!   constant rate, each bound to a Java Grande kernel execution, handled
//!   by one of the [`gui::Approach`]es; measures mean response time and
//!   EDT occupancy. Drives the `fig7_response_time` and
//!   `fig8_parallel_handling` binaries.
//! * [`httpbench`] — the §V-B HTTP encryption service under virtual-user
//!   load, Jetty-style vs Pyjama-style, with optional per-event
//!   `omp parallel` kernels. Drives `fig9_http_throughput`.
//! * [`report`] — small table/CSV formatting helpers shared by the bins.
//! * [`perfjson`] — hand-rolled JSON emission folding the headline number
//!   of each `bench_results/*.csv` artifact into one machine-readable
//!   document (`BENCH_hotpath.json`, written by the `post_hotpath` bench).
//!
//! Scaling note: the paper's testbeds (i5 desktop, 16-core Xeon) and JVM
//! kernels ran hundreds of milliseconds per event; this harness uses
//! scaled-down kernel sizes (a few ms per event) so a full sweep finishes
//! in CI time. Shapes — which approach wins, where curves flatten — are
//! the reproduction target, not absolute numbers (see EXPERIMENTS.md).

pub mod gui;
pub mod httpbench;
pub mod perfjson;
pub mod report;

/// True when the `PJ_BENCH_QUICK` environment variable requests shortened
/// sweeps (used by integration tests; the default sweep is the full one).
pub fn quick_mode() -> bool {
    std::env::var("PJ_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Parses `--trace <path>` (or `--trace=<path>`) from the command line and,
/// when present, turns tracing on for the whole run. Pair with
/// [`finish_trace`] before exit to write the Chrome trace.
pub fn trace_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next().expect("--trace requires a file path");
            pyjama_trace::enable();
            return Some(path);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            pyjama_trace::enable();
            return Some(p.to_string());
        }
    }
    None
}

/// Stops tracing and exports everything recorded to `path` as Chrome
/// `about://tracing` JSON. No-op when `path` is `None` (tracing was never
/// requested).
pub fn finish_trace(path: Option<&str>) {
    let Some(path) = path else { return };
    pyjama_trace::disable();
    let trace = pyjama_trace::collect();
    match trace.write_chrome(path) {
        Ok(()) => eprintln!(
            "trace: wrote {} events from {} threads to {path} ({} dropped)",
            trace.len(),
            trace.threads.len(),
            trace.dropped()
        ),
        Err(e) => eprintln!("trace: failed to write {path}: {e}"),
    }
}
