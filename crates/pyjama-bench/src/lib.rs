//! Benchmark harnesses regenerating the paper's evaluation (§V).
//!
//! * [`gui`] — the §V-A GUI event-handling experiment: events fired at a
//!   constant rate, each bound to a Java Grande kernel execution, handled
//!   by one of the [`gui::Approach`]es; measures mean response time and
//!   EDT occupancy. Drives the `fig7_response_time` and
//!   `fig8_parallel_handling` binaries.
//! * [`httpbench`] — the §V-B HTTP encryption service under virtual-user
//!   load, Jetty-style vs Pyjama-style, with optional per-event
//!   `omp parallel` kernels. Drives `fig9_http_throughput`.
//! * [`report`] — small table/CSV formatting helpers shared by the bins.
//!
//! Scaling note: the paper's testbeds (i5 desktop, 16-core Xeon) and JVM
//! kernels ran hundreds of milliseconds per event; this harness uses
//! scaled-down kernel sizes (a few ms per event) so a full sweep finishes
//! in CI time. Shapes — which approach wins, where curves flatten — are
//! the reproduction target, not absolute numbers (see EXPERIMENTS.md).

pub mod gui;
pub mod httpbench;
pub mod report;

/// True when the `PJ_BENCH_QUICK` environment variable requests shortened
/// sweeps (used by integration tests; the default sweep is the full one).
pub fn quick_mode() -> bool {
    std::env::var("PJ_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}
