//! Table and CSV output helpers for the figure harnesses.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a `Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much-longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("much-longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = std::env::temp_dir().join("pyjama_report_test.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.50");
    }
}
