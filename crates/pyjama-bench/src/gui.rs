//! The §V-A GUI event-handling benchmark.
//!
//! "Scenarios are simulated in which a GUI application is under different
//! loads of event handling, and the benchmarks measure the ability of
//! handling events by different approaches. … For each benchmark, the
//! event is bound with an execution of its kernel. Every benchmark is run
//! … with different request loads, ranging from 10 requests/sec to 100
//! requests/sec. The response time shows the time flow from the event
//! firing to the finish of its event handling."

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_baselines::{ExecutorService, SwingWorker, SwingWorkerPool};
use pyjama_gui::{ConfinementPolicy, Gui};
use pyjama_kernels::Workload;
use pyjama_metrics::LatencyRecorder;
use pyjama_runtime::{Mode, Runtime};

/// The offloading approaches compared in §V-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Naive: the EDT executes the kernel inside the handler.
    Sequential,
    /// Java `SwingWorker` (Figure 3): background pool + `done` on the EDT.
    SwingWorker,
    /// `ExecutorService` + `invokeLater` (§II-A's task/pool pattern).
    Executor,
    /// `//#omp target virtual(worker) await`: EDT offloads, keeps pumping,
    /// continuation runs after the block.
    PyjamaAwait,
    /// `//#omp target virtual(worker) nowait` with a nested
    /// `target virtual(edt)` for the final GUI update (Figure 6 style).
    PyjamaNowait,
    /// "Synchronous parallel": the kernel is parallelized with
    /// `omp parallel` but the EDT is the team master and stays busy
    /// (foreground parallelisation, n worker threads).
    SyncParallel(usize),
    /// "Asynchronous parallel": offloaded via a virtual target *and*
    /// parallelized inside the block.
    AsyncParallel(usize),
}

impl Approach {
    /// Short display name used in report tables.
    pub fn name(&self) -> String {
        match self {
            Approach::Sequential => "sequential".into(),
            Approach::SwingWorker => "swingworker".into(),
            Approach::Executor => "executor".into(),
            Approach::PyjamaAwait => "pyjama-await".into(),
            Approach::PyjamaNowait => "pyjama-nowait".into(),
            Approach::SyncParallel(n) => format!("sync-parallel({n})"),
            Approach::AsyncParallel(n) => format!("async-parallel({n})"),
        }
    }
}

/// One cell of the Figure 7/8 result grid.
#[derive(Clone, Debug)]
pub struct GuiBenchResult {
    /// Events completed (all of them, or the run failed).
    pub completed: usize,
    /// Mean response time (fire → handling finished).
    pub mean_response: Duration,
    /// 99th percentile response time.
    pub p99_response: Duration,
    /// Fraction of wall-clock the EDT spent busy in handlers.
    pub edt_busy_fraction: f64,
    /// Wall-clock of the whole run.
    pub wall: Duration,
}

/// Configuration of one run.
#[derive(Clone, Copy, Debug)]
pub struct GuiBenchConfig {
    /// Events fired per second (the paper sweeps 10..100).
    pub requests_per_sec: f64,
    /// Total events to fire.
    pub total_requests: usize,
    /// Worker threads available to offloading approaches.
    pub worker_threads: usize,
    /// Blocking I/O time inside each handler, after the kernel — the
    /// "networkDownload" phase of Figure 6. The paper targets handlers
    /// that are "CPU-intensive or I/O-bound" (§I); on single-core CI
    /// machines the I/O phase is what lets offloading approaches overlap
    /// events, exactly as it does for real downloads.
    pub io_per_event: Duration,
}

impl Default for GuiBenchConfig {
    fn default() -> Self {
        GuiBenchConfig {
            requests_per_sec: 50.0,
            total_requests: 100,
            worker_threads: 3,
            io_per_event: Duration::ZERO,
        }
    }
}

/// Runs one (kernel × approach × load) cell and returns its measurements.
///
/// Events are fired open-loop at `requests_per_sec` from a generator
/// thread, like the paper's constant request loads: a slow approach lets
/// the queue build up, which is exactly what inflates its response times.
pub fn run_gui_benchmark(
    workload: Workload,
    approach: Approach,
    config: &GuiBenchConfig,
) -> GuiBenchResult {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle())
        .expect("register edt");
    rt.virtual_target_create_worker("worker", config.worker_threads);
    let swing_pool = Arc::new(SwingWorkerPool::default_pool());
    let executor = Arc::new(ExecutorService::new_fixed(config.worker_threads));

    let latency = Arc::new(LatencyRecorder::new());
    let completed = Arc::new(AtomicUsize::new(0));
    let status = gui.label("status");
    gui.occupancy().start_window();

    let t_start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / config.requests_per_sec);

    for i in 0..config.total_requests {
        // Open-loop pacing.
        let due = t_start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let fired_at = Instant::now();
        fire_event(
            approach,
            workload,
            config.io_per_event,
            fired_at,
            &gui,
            &rt,
            &swing_pool,
            &executor,
            &latency,
            &completed,
            &status,
        );
    }

    // Wait for every handler to finish.
    let deadline = Instant::now() + Duration::from_secs(120);
    while completed.load(Ordering::SeqCst) < config.total_requests {
        assert!(
            Instant::now() < deadline,
            "GUI benchmark stalled: {}/{} events completed ({:?}, {:?})",
            completed.load(Ordering::SeqCst),
            config.total_requests,
            workload.kind,
            approach
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = t_start.elapsed();
    let result = GuiBenchResult {
        completed: completed.load(Ordering::SeqCst),
        mean_response: latency.mean(),
        p99_response: latency.quantile(0.99),
        edt_busy_fraction: gui.occupancy().busy_fraction(),
        wall,
    };
    executor.shutdown();
    gui.shutdown();
    result
}

/// The per-event work: kernel compute, then the blocking I/O phase.
fn handle_event(workload: Workload, par: Option<usize>, io: Duration) {
    workload.run(par);
    if io > Duration::ZERO {
        std::thread::sleep(io);
    }
}

#[allow(clippy::too_many_arguments)]
fn fire_event(
    approach: Approach,
    workload: Workload,
    io: Duration,
    fired_at: Instant,
    gui: &Gui,
    rt: &Arc<Runtime>,
    swing_pool: &Arc<SwingWorkerPool>,
    executor: &Arc<ExecutorService>,
    latency: &Arc<LatencyRecorder>,
    completed: &Arc<AtomicUsize>,
    status: &Arc<pyjama_gui::Label>,
) {
    // Each event: GUI update → kernel → GUI update (the paper: "there are
    // GUI updates before and after the kernel execution").
    let finish = {
        let latency = Arc::clone(latency);
        let completed = Arc::clone(completed);
        let status = Arc::clone(status);
        move || {
            status.set_text("done");
            latency.record(fired_at.elapsed());
            completed.fetch_add(1, Ordering::SeqCst);
        }
    };

    match approach {
        Approach::Sequential => {
            let status = Arc::clone(status);
            gui.invoke_later(move || {
                status.set_text("handling");
                handle_event(workload, None, io);
                finish();
            });
        }
        Approach::SyncParallel(threads) => {
            let status = Arc::clone(status);
            gui.invoke_later(move || {
                status.set_text("handling");
                handle_event(workload, Some(threads), io);
                finish();
            });
        }
        Approach::SwingWorker => {
            let status = Arc::clone(status);
            let pool = Arc::clone(swing_pool);
            let edt = gui.edt_handle();
            gui.invoke_later(move || {
                status.set_text("handling");
                SwingWorker::<u64, ()>::new(edt.clone())
                    .done(move |_checksum| finish())
                    .execute(&pool, move |_publisher| {
                        handle_event(workload, None, io);
                        0u64
                    });
            });
        }
        Approach::Executor => {
            let status = Arc::clone(status);
            let executor = Arc::clone(executor);
            let edt = gui.edt_handle();
            gui.invoke_later(move || {
                status.set_text("handling");
                let edt = edt.clone();
                executor.execute(move || {
                    handle_event(workload, None, io);
                    // SwingUtilities.invokeLater for the GUI part.
                    edt.post(finish);
                });
            });
        }
        Approach::PyjamaAwait => {
            let status = Arc::clone(status);
            let rt = Arc::clone(rt);
            gui.invoke_later(move || {
                status.set_text("handling");
                // //#omp target virtual(worker) await { kernel }
                rt.target("worker", Mode::Await, move || {
                    handle_event(workload, None, io);
                });
                // Continuation: still on the EDT, after the block.
                finish();
            });
        }
        Approach::PyjamaNowait => {
            let status = Arc::clone(status);
            let rt = Arc::clone(rt);
            gui.invoke_later(move || {
                status.set_text("handling");
                // //#omp target virtual(worker) nowait { kernel;
                //     //#omp target virtual(edt) { finish } }
                let rt2 = Arc::clone(&rt);
                rt.target("worker", Mode::NoWait, move || {
                    handle_event(workload, None, io);
                    rt2.target("edt", Mode::NoWait, finish);
                });
            });
        }
        Approach::AsyncParallel(threads) => {
            let status = Arc::clone(status);
            let rt = Arc::clone(rt);
            gui.invoke_later(move || {
                status.set_text("handling");
                let rt2 = Arc::clone(&rt);
                rt.target("worker", Mode::NoWait, move || {
                    handle_event(workload, Some(threads), io);
                    rt2.target("edt", Mode::NoWait, finish);
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyjama_kernels::KernelKind;

    fn tiny_config() -> GuiBenchConfig {
        GuiBenchConfig {
            requests_per_sec: 200.0,
            total_requests: 10,
            worker_threads: 2,
            io_per_event: Duration::ZERO,
        }
    }

    #[test]
    fn all_approaches_complete_all_events() {
        let w = Workload::tiny(KernelKind::Crypt);
        for approach in [
            Approach::Sequential,
            Approach::SwingWorker,
            Approach::Executor,
            Approach::PyjamaAwait,
            Approach::PyjamaNowait,
            Approach::SyncParallel(2),
            Approach::AsyncParallel(2),
        ] {
            let r = run_gui_benchmark(w, approach, &tiny_config());
            assert_eq!(r.completed, 10, "{approach:?}");
            assert!(r.mean_response > Duration::ZERO, "{approach:?}");
            assert!(r.p99_response >= r.mean_response / 2, "{approach:?}");
        }
    }

    #[test]
    fn offloading_reduces_edt_busy_fraction() {
        // Under saturating load, the sequential approach keeps the EDT
        // far busier than worker offloading does.
        let w = Workload::new(KernelKind::Crypt, 64 * 1024);
        let config = GuiBenchConfig {
            requests_per_sec: 300.0,
            total_requests: 30,
            worker_threads: 3,
            io_per_event: Duration::from_millis(2),
        };
        let seq = run_gui_benchmark(w, Approach::Sequential, &config);
        let off = run_gui_benchmark(w, Approach::PyjamaNowait, &config);
        assert!(
            off.edt_busy_fraction < seq.edt_busy_fraction,
            "offloaded EDT busy {:.3} should be below sequential {:.3}",
            off.edt_busy_fraction,
            seq.edt_busy_fraction
        );
    }

    #[test]
    fn approach_names_are_stable() {
        assert_eq!(Approach::Sequential.name(), "sequential");
        assert_eq!(Approach::SyncParallel(3).name(), "sync-parallel(3)");
    }
}
