//! **C10K** — the reactor's connection-ceiling benchmark: a Fig-9-style
//! run at 10,000 virtual users (each holding one keep-alive connection),
//! which no thread-per-connection policy can attempt, plus a head-to-head
//! throughput gate against the Pyjama keep-alive pipeline at 4 workers.
//!
//! Phase A holds `conns` keep-alive connections (default 10,000; ~1,000
//! under `PJ_BENCH_QUICK=1`) open against a 4-worker reactor server and
//! drives synchronized request waves over all of them, reporting wave
//! throughput and per-request p50/p99/p999 latency. Two process-level
//! tricks make the scale honest: a thread-per-user load generator cannot
//! reach 10k users, so a few client threads multiplex the sockets
//! directly; and the client runs in a *separate process* (this binary
//! re-executed with `PJ_C10K_ROLE=client`) so the server process holds all
//! 10,000 sockets within its own fd limit — containers that refuse
//! `setrlimit` raises cap a single process well below 2×10k fds.
//!
//! Phase B is the regression gate: `run_http_benchmark` at the paper's
//! 100-user scale, Pyjama vs Reactor, asserting the reactor's req/s is not
//! worse than the Pyjama keep-alive pipeline (within a 10% noise floor,
//! best of two attempts — this is a 1-CPU CI box).
//!
//! Run: `cargo run --release -p pyjama-bench --bin c10k`

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_bench::httpbench::{run_http_benchmark, HttpBenchConfig, ServerFlavor};
use pyjama_bench::report::{ms, Table};
use pyjama_http::{
    nofile_limit_at_least, HttpServer, Request, Response, ServerOptions, ServingPolicy, Status,
};
use pyjama_metrics::LatencyRecorder;
use pyjama_runtime::Runtime;

const CLIENT_THREADS: usize = 8;
const WORKERS: usize = 4;

fn connect_retry(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for _ in 0..400 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    panic!("connect kept failing: {last:?}");
}

fn keepalive_wire() -> Vec<u8> {
    let mut req = Request::new("POST", "/c10k", b"ping".to_vec());
    req.headers.insert("connection", "keep-alive");
    let mut wire = Vec::new();
    req.write_into(&mut wire);
    wire
}

/// One synchronized wave: every connection sends one request, then every
/// response is read back and its per-connection latency recorded.
fn wave(socks: &mut [TcpStream], wire: &[u8], latency: &LatencyRecorder) {
    let chunk = socks.len().div_ceil(CLIENT_THREADS).max(1);
    std::thread::scope(|s| {
        for part in socks.chunks_mut(chunk) {
            s.spawn(move || {
                let mut starts = Vec::with_capacity(part.len());
                for sock in part.iter_mut() {
                    starts.push(Instant::now());
                    sock.write_all(wire).unwrap();
                }
                for (sock, start) in part.iter().zip(starts) {
                    let mut r = BufReader::with_capacity(512, sock);
                    let resp = Response::read_from(&mut r).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                    assert_eq!(resp.body, b"ping");
                    latency.record_since(start);
                }
            });
        }
    });
}

/// The load-generator role, run in a child process: connect `conns`
/// keep-alive sockets (first request riding along with each connect),
/// drive `waves` synchronized waves, and report machine-readable results
/// on the last stdout line.
fn run_client(addr: SocketAddr, conns: usize, waves: usize) {
    nofile_limit_at_least(conns as u64 + 256);
    let wire = keepalive_wire();

    let t_ramp = Instant::now();
    let per = conns.div_ceil(CLIENT_THREADS);
    let mut socks: Vec<TcpStream> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                let wire = &wire;
                let count = per.min(conns.saturating_sub(t * per));
                s.spawn(move || {
                    let mut v = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut sock = connect_retry(addr);
                        sock.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                        sock.write_all(wire).unwrap();
                        v.push(sock);
                    }
                    v
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(socks.len(), conns);
    // Drain the ramp wave's responses (unmeasured: it includes connect cost).
    std::thread::scope(|s| {
        let chunk = socks.len().div_ceil(CLIENT_THREADS).max(1);
        for part in socks.chunks(chunk) {
            s.spawn(move || {
                for sock in part.iter() {
                    let mut r = BufReader::with_capacity(512, sock);
                    let resp = Response::read_from(&mut r).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }
    });
    let ramp = t_ramp.elapsed();
    println!("ramp-up: {conns} connections + first responses in {ramp:?}");

    let latency = LatencyRecorder::new();
    let t_waves = Instant::now();
    for w in 0..waves {
        let t0 = Instant::now();
        wave(&mut socks, &wire, &latency);
        println!("wave {}/{waves}: {conns} responses in {:?}", w + 1, t0.elapsed());
    }
    let wall = t_waves.elapsed();
    println!(
        "RESULT ramp_ms={} wall_ms={} p50_us={} p99_us={} p999_us={}",
        ramp.as_millis(),
        wall.as_millis(),
        latency.quantile(0.5).as_micros(),
        latency.quantile(0.99).as_micros(),
        latency.quantile(0.999).as_micros(),
    );
}

fn parse_result(line: &str) -> std::collections::HashMap<String, u64> {
    line.trim_start_matches("RESULT ")
        .split_whitespace()
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

fn main() {
    if std::env::var("PJ_C10K_ROLE").as_deref() == Ok("client") {
        let addr: SocketAddr = std::env::var("PJ_C10K_ADDR").unwrap().parse().unwrap();
        let conns: usize = std::env::var("PJ_C10K_CONNS").unwrap().parse().unwrap();
        let waves: usize = std::env::var("PJ_C10K_WAVES").unwrap().parse().unwrap();
        run_client(addr, conns, waves);
        return;
    }

    let quick = pyjama_bench::quick_mode();
    let want: usize = if quick { 1_000 } else { 10_000 };
    let waves: usize = if quick { 2 } else { 3 };

    // The client process owns the other end of every socket, so this
    // (server) process needs ~1 fd per connection plus headroom.
    let limit = nofile_limit_at_least(want as u64 + 512);
    let conns = want.min(limit.saturating_sub(512) as usize);
    assert_eq!(
        conns, want,
        "fd limit {limit} cannot hold {want} server-side sockets"
    );

    println!(
        "=== C10K — {conns} keep-alive connections, {WORKERS}-worker reactor, {waves} waves ==="
    );

    // --- Phase A: hold the connections, drive synchronized waves ---------
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", WORKERS);
    let opts = ServerOptions {
        idle_timeout: Duration::from_secs(600),
        io_timeout: Duration::from_secs(30),
        ..ServerOptions::default()
    };
    let mut server = HttpServer::start_with(
        ServingPolicy::Reactor {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        opts,
        |req| Response::ok(req.body.clone()),
    )
    .expect("start reactor server");

    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .env("PJ_C10K_ROLE", "client")
        .env("PJ_C10K_ADDR", server.addr().to_string())
        .env("PJ_C10K_CONNS", conns.to_string())
        .env("PJ_C10K_WAVES", waves.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn client process");
    let mut result = None;
    for line in BufReader::new(child.stdout.take().unwrap()).lines() {
        let line = line.expect("client stdout");
        if line.starts_with("RESULT ") {
            result = Some(parse_result(&line));
        } else {
            println!("client: {line}");
        }
    }
    let status = child.wait().expect("client process");
    assert!(status.success(), "client process failed: {status}");
    let result = result.expect("client RESULT line");

    assert_eq!(server.errors(), 0, "no connection may fail");
    let conn_stats = server.conn_stats();
    assert_eq!(conn_stats.accepted, conns as u64);
    server.shutdown();
    let stats = server.reactor_stats().expect("reactor stats");
    assert!(
        stats.readiness_balanced(),
        "conservation law violated: {stats:?}"
    );
    assert_eq!(stats.registered, conns as u64);

    let requests = (conns * waves) as u64;
    let wall = Duration::from_millis(result["wall_ms"].max(1));
    let rps = requests as f64 / wall.as_secs_f64();
    let (p50, p99, p999) = (
        Duration::from_micros(result["p50_us"]),
        Duration::from_micros(result["p99_us"]),
        Duration::from_micros(result["p999_us"]),
    );
    let mut table = Table::new(&[
        "conns", "workers", "waves", "req/s", "p50", "p99", "p999",
    ]);
    table.row(vec![
        conns.to_string(),
        WORKERS.to_string(),
        waves.to_string(),
        format!("{rps:.0}"),
        ms(p50),
        ms(p99),
        ms(p999),
    ]);
    print!("{}", table.render());
    println!(
        "reactor counters: dispatched={} rearms_read={} rearms_write={} spurious={} evicted_idle={}",
        stats.dispatched, stats.rearms_read, stats.rearms_write, stats.spurious_ready,
        stats.evicted_idle
    );

    // --- Phase B: throughput gate vs the Pyjama keep-alive pipeline ------
    let (users, reqs) = if quick { (20, 3) } else { (100, 5) };
    let config = HttpBenchConfig {
        users,
        requests_per_user: reqs,
        worker_threads: WORKERS,
        omp_parallel_per_event: None,
        payload: 2048,
        work_factor: if quick { 8 } else { 24 },
        io_ms: 10,
        keepalive: true,
    };
    println!("\ngate: pyjama vs reactor at {WORKERS} workers, {users} users × {reqs} requests");
    let mut ratio = 0.0;
    let mut gate = (0.0, 0.0);
    // Best of two attempts: single cells on a 1-CPU box are noisy.
    for attempt in 0..2 {
        let pyjama = run_http_benchmark(ServerFlavor::Pyjama, &config);
        let reactor = run_http_benchmark(ServerFlavor::Reactor, &config);
        assert_eq!(pyjama.failed, 0, "pyjama gate cell had failures");
        assert_eq!(reactor.failed, 0, "reactor gate cell had failures");
        let r = reactor.throughput / pyjama.throughput.max(1e-9);
        println!(
            "attempt {}: pyjama {:.1} req/s, reactor {:.1} req/s (ratio {r:.2})",
            attempt + 1,
            pyjama.throughput,
            reactor.throughput
        );
        if r > ratio {
            ratio = r;
            gate = (pyjama.throughput, reactor.throughput);
        }
        if ratio >= 0.9 {
            break;
        }
    }
    assert!(
        ratio >= 0.9,
        "reactor req/s ({:.1}) worse than pyjama keep-alive ({:.1}) at {WORKERS} workers",
        gate.1,
        gate.0
    );

    let out = "bench_results/c10k.csv";
    let mut csv = Table::new(&[
        "conns",
        "workers",
        "waves",
        "requests",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "dispatched",
        "rearms_read",
        "rearms_write",
        "spurious_ready",
        "evicted_idle",
        "gate_pyjama_rps",
        "gate_reactor_rps",
        "failed",
    ]);
    csv.row(vec![
        conns.to_string(),
        WORKERS.to_string(),
        waves.to_string(),
        requests.to_string(),
        format!("{rps:.2}"),
        ms(p50),
        ms(p99),
        ms(p999),
        stats.dispatched.to_string(),
        stats.rearms_read.to_string(),
        stats.rearms_write.to_string(),
        stats.spurious_ready.to_string(),
        stats.evicted_idle.to_string(),
        format!("{:.2}", gate.0),
        format!("{:.2}", gate.1),
        "0".to_string(),
    ]);
    csv.write_csv(out).expect("write csv");
    println!("\nwrote {out}");
}
