//! **Figure 8 (§V-A)**: foreground vs background parallelisation.
//!
//! The paper contrasts the "synchronous parallel version (in default using
//! 3 worker threads), in which only the computational kernels are
//! parallelized and the EDT still does part of the computing job …
//! Therefore, the EDT in the synchronous parallel approach is actually
//! unresponsive for a longer time compared to other approaches" with
//! asynchronous-parallel handling (offload + `omp parallel` inside the
//! target block).
//!
//! This harness measures, per kernel: mean response time *and* the EDT
//! busy fraction — the two axes that separate the four strategies:
//!
//! * sequential: slow handler, busy EDT
//! * sync-parallel(3): faster handler, still-busy EDT (master participates)
//! * pyjama-await: handler latency ≈ kernel time, idle-ish EDT
//! * async-parallel(3): fast handler *and* idle EDT
//!
//! Run: `cargo run --release -p pyjama-bench --bin fig8_parallel_handling`

use pyjama_bench::gui::{run_gui_benchmark, Approach, GuiBenchConfig};
use pyjama_bench::report::{ms, Table};
use pyjama_kernels::{KernelKind, Workload};

fn main() {
    let trace_path = pyjama_bench::trace_arg();
    let quick = pyjama_bench::quick_mode();
    let approaches = [
        Approach::Sequential,
        Approach::SyncParallel(3),
        Approach::PyjamaAwait,
        Approach::AsyncParallel(3),
    ];
    let kernels = if quick {
        vec![KernelKind::Series]
    } else {
        KernelKind::ALL.to_vec()
    };
    let config = GuiBenchConfig {
        requests_per_sec: if quick { 100.0 } else { 40.0 },
        total_requests: if quick { 15 } else { 60 },
        worker_threads: 3,
        // The "download" half of each handler (§I: handlers are
        // "CPU-intensive or I/O-bound"); lets offloading overlap events
        // even on single-core CI machines.
        io_per_event: std::time::Duration::from_millis(15),
    };

    let mut csv = Table::new(&[
        "kernel",
        "approach",
        "mean_response_ms",
        "p99_response_ms",
        "edt_busy_fraction",
    ]);

    for kernel in kernels {
        let workload = Workload::handler_sized(kernel);
        println!(
            "\n=== Figure 8 — kernel: {kernel}, load {} req/s ===",
            config.requests_per_sec
        );
        let mut table = Table::new(&["approach", "mean resp (ms)", "p99 (ms)", "EDT busy"]);
        for &approach in &approaches {
            let r = run_gui_benchmark(workload, approach, &config);
            table.row(vec![
                approach.name(),
                ms(r.mean_response),
                ms(r.p99_response),
                format!("{:.1}%", r.edt_busy_fraction * 100.0),
            ]);
            csv.row(vec![
                kernel.name().to_string(),
                approach.name(),
                ms(r.mean_response),
                ms(r.p99_response),
                format!("{:.4}", r.edt_busy_fraction),
            ]);
        }
        print!("{}", table.render());
    }

    let out = "bench_results/fig8_parallel_handling.csv";
    csv.write_csv(out).expect("write csv");
    println!("\nwrote {out}");
    println!(
        "\nexpected shape: sync-parallel cuts handler latency vs sequential but keeps the\n\
         EDT busy (it is the team master); async approaches free the EDT; async-parallel\n\
         combines both benefits — the paper's motivation for the hybrid model."
    );
    pyjama_bench::finish_trace(trace_path.as_deref());
}
