//! **Table I (§III-C)**: observable semantics of the four scheduling
//! modes, demonstrated with timing.
//!
//! For each mode, a 50 ms block is offloaded and two instants are
//! measured: when the encountering thread reaches the statement after the
//! target block (the *continuation*), and when the block itself finishes.
//!
//! * `wait` / `await`: continuation ≥ block finish.
//! * `nowait` / `name_as`: continuation ≪ block finish; `wait(tag)` then
//!   synchronises with the tagged instance.
//!
//! Run: `cargo run --release -p pyjama-bench --bin table1_modes`

use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_bench::report::{ms, Table};
use pyjama_runtime::{Mode, Runtime};

const BLOCK: Duration = Duration::from_millis(50);

fn measure(rt: &Runtime, mode: Mode) -> (Duration, Duration, bool) {
    let t0 = Instant::now();
    let finished_at: Arc<parking_lot::Mutex<Option<Duration>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let f2 = Arc::clone(&finished_at);
    let handle = rt.target("worker", mode.clone(), move || {
        std::thread::sleep(BLOCK);
        *f2.lock() = Some(t0.elapsed());
    });
    let continuation_at = t0.elapsed();
    let finished_before_continuation = handle.is_finished();
    if let Mode::NameAs(tag) = &mode {
        rt.wait_tag(tag);
    }
    handle.wait();
    let block_at = finished_at.lock().expect("block ran");
    (continuation_at, block_at, finished_before_continuation)
}

fn main() {
    let trace_path = pyjama_bench::trace_arg();
    let rt = Runtime::new();
    rt.virtual_target_create_worker("worker", 2);

    println!("=== Table I — scheduling-property clauses (50 ms target block) ===\n");
    let mut table = Table::new(&[
        "clause",
        "continuation after (ms)",
        "block finished at (ms)",
        "blocks continuation?",
    ]);

    for (label, mode) in [
        ("(default: wait)", Mode::Wait),
        ("nowait", Mode::NoWait),
        ("name_as(t) … wait(t)", Mode::name_as("t")),
        ("await", Mode::Await),
    ] {
        let (cont, block, finished_first) = measure(&rt, mode.clone());
        table.row(vec![
            label.to_string(),
            ms(cont),
            ms(block),
            if mode.blocks_continuation() {
                format!("yes (block finished first: {finished_first})")
            } else {
                "no".to_string()
            },
        ]);
        // Sanity assertions — this binary doubles as an executable spec.
        match mode {
            Mode::Wait | Mode::Await => assert!(
                cont >= BLOCK,
                "{label}: continuation at {cont:?} must follow the 50 ms block"
            ),
            Mode::NoWait | Mode::NameAs(_) => assert!(
                cont < BLOCK / 2,
                "{label}: continuation at {cont:?} should not wait for the block"
            ),
        }
    }
    print!("{}", table.render());
    println!("\nall four modes behaved per Table I ✓");
    pyjama_bench::finish_trace(trace_path.as_deref());
}
