//! **Figure 9 (§V-B)**: HTTP encryption-service throughput vs number of
//! concurrent worker threads — Jetty-style vs Pyjama virtual targets, each
//! with and without per-event `omp parallel` kernels.
//!
//! Paper: "both Jetty and Pyjama have good scaling performance as the
//! number of concurrency worker threads increases. When the
//! parallelization of each event (using //omp parallel) is used … it
//! initially results in dramatically better throughput. Yet, as the number
//! of concurrency worker threads is increased, the throughput levels off
//! … because every parallelization computation spawns its own set of
//! worker threads, and] the total number of threads in the system soars."
//!
//! Run: `cargo run --release -p pyjama-bench --bin fig9_http_throughput`

use pyjama_bench::httpbench::{run_http_benchmark, HttpBenchConfig, ServerFlavor};
use pyjama_bench::report::{ms, Table};

fn main() {
    let trace_path = pyjama_bench::trace_arg();
    if trace_path.is_some() {
        // A full sweep spins up fresh server threads per cell and every
        // ring stays registered until the final export; small rings keep
        // the sweep's footprint bounded.
        pyjama_trace::set_ring_capacity(8192);
    }
    let quick = pyjama_bench::quick_mode();
    let thread_sweep: Vec<usize> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let (users, reqs) = if quick { (10, 3) } else { (100, 5) };
    let omp_width = 4;

    let variants: [(&str, ServerFlavor, Option<usize>); 6] = [
        ("jetty", ServerFlavor::Jetty, None),
        ("pyjama", ServerFlavor::Pyjama, None),
        ("reactor", ServerFlavor::Reactor, None),
        ("jetty+parallel", ServerFlavor::Jetty, Some(omp_width)),
        ("pyjama+parallel", ServerFlavor::Pyjama, Some(omp_width)),
        ("reactor+parallel", ServerFlavor::Reactor, Some(omp_width)),
    ];

    println!(
        "=== Figure 9 — encryption service, {users} virtual users × {reqs} requests ===\n"
    );
    // The keep-alive sweep: `false` reproduces the paper-era
    // connection-per-request baseline, `true` is the persistent-connection
    // pipeline. The printed table shows keep-alive numbers; the CSV keeps
    // both.
    let mut header = vec!["workers".to_string()];
    header.extend(variants.iter().map(|(n, _, _)| format!("{n} (resp/s)")));
    let mut table = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut csv = Table::new(&[
        "variant",
        "keepalive",
        "worker_threads",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "mean_response_ms",
        "queue_delay_p99_ms",
        "reused_conns",
        "failed",
    ]);

    for &threads in &thread_sweep {
        let mut row = vec![threads.to_string()];
        for (name, flavor, omp) in &variants {
            for keepalive in [false, true] {
                let config = HttpBenchConfig {
                    users,
                    requests_per_user: reqs,
                    worker_threads: threads,
                    omp_parallel_per_event: *omp,
                    payload: 2048,
                    work_factor: if quick { 8 } else { 24 },
                    io_ms: 10,
                    keepalive,
                };
                let r = run_http_benchmark(*flavor, &config);
                assert_eq!(
                    r.failed, 0,
                    "{name} at {threads} workers (keepalive={keepalive}) had failures"
                );
                if keepalive {
                    row.push(format!("{:.1}", r.throughput));
                }
                csv.row(vec![
                    name.to_string(),
                    keepalive.to_string(),
                    threads.to_string(),
                    format!("{:.2}", r.throughput),
                    ms(r.p50_response),
                    ms(r.p99_response),
                    ms(r.p999_response),
                    ms(r.mean_response),
                    ms(r.queue_delay_p99),
                    r.conns.reused.to_string(),
                    r.failed.to_string(),
                ]);
            }
        }
        table.row(row);
    }
    print!("{}", table.render());

    let out = "bench_results/fig9_http_throughput.csv";
    csv.write_csv(out).expect("write csv");
    println!("\nwrote {out}");
    println!(
        "\nexpected shape: plain jetty and pyjama scale comparably with worker threads;\n\
         the +parallel variants win at low worker counts (idle cores absorb the inner\n\
         teams) then level off or degrade as worker_threads × omp_width oversubscribes\n\
         the machine — the paper's thread-scheduling-overhead plateau. The CSV's\n\
         keepalive=false rows are the connection-per-request baseline; keepalive=true\n\
         amortises TCP setup and the codec's buffers across each user's requests.\n\
         The reactor rows should track pyjama keep-alive at this (100-user) scale —\n\
         its win is the connection ceiling, measured separately by the c10k bin."
    );
    pyjama_bench::finish_trace(trace_path.as_deref());
}
