//! **Figure 7 (§V-A)**: average event response time vs request load, per
//! kernel, comparing offloading approaches.
//!
//! Paper setup: Swing GUI, kernels {Crypt, RayTracer, MonteCarlo, Series},
//! loads 10..100 requests/sec, approaches {sequential, SwingWorker,
//! ExecutorService, Pyjama}. Expected shape: the sequential EDT saturates
//! (response time explodes once arrival rate × service time ≥ 1) while all
//! offloading approaches stay near the per-event service time, with
//! "performance … equal and often superior to manual implementations."
//!
//! Run: `cargo run --release -p pyjama-bench --bin fig7_response_time`
//! (set `PJ_BENCH_QUICK=1` for a fast smoke sweep).

use pyjama_bench::gui::{run_gui_benchmark, Approach, GuiBenchConfig};
use pyjama_bench::report::{ms, Table};
use pyjama_kernels::{KernelKind, Workload};

fn main() {
    let trace_path = pyjama_bench::trace_arg();
    let quick = pyjama_bench::quick_mode();
    let loads: Vec<f64> = if quick {
        vec![20.0, 100.0]
    } else {
        vec![10.0, 25.0, 50.0, 75.0, 100.0]
    };
    let approaches = [
        Approach::Sequential,
        Approach::SwingWorker,
        Approach::Executor,
        Approach::PyjamaAwait,
        Approach::PyjamaNowait,
    ];
    let kernels = if quick {
        vec![KernelKind::Crypt]
    } else {
        KernelKind::ALL.to_vec()
    };

    let mut csv = Table::new(&[
        "kernel",
        "approach",
        "load_req_per_sec",
        "mean_response_ms",
        "p99_response_ms",
        "edt_busy_fraction",
    ]);

    for kernel in kernels {
        let workload = Workload::event_sized(kernel);
        println!("\n=== Figure 7 — kernel: {kernel} (size {}) ===", workload.size);
        let mut header = vec!["load (req/s)".to_string()];
        header.extend(approaches.iter().map(|a| a.name()));
        let mut t2 = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());

        for &load in &loads {
            let total = if quick {
                20
            } else {
                (load as usize).clamp(40, 120)
            };
            let config = GuiBenchConfig {
                requests_per_sec: load,
                total_requests: total,
                worker_threads: 3,
                // Each event = kernel compute + a 15 ms I/O phase (the
                // "download" of Figure 6). Offloading approaches overlap
                // the I/O across workers; the sequential EDT cannot.
                io_per_event: std::time::Duration::from_millis(15),
            };
            let mut row = vec![format!("{load:.0}")];
            for &approach in &approaches {
                let r = run_gui_benchmark(workload, approach, &config);
                row.push(ms(r.mean_response));
                csv.row(vec![
                    kernel.name().to_string(),
                    approach.name(),
                    format!("{load:.0}"),
                    ms(r.mean_response),
                    ms(r.p99_response),
                    format!("{:.4}", r.edt_busy_fraction),
                ]);
            }
            t2.row(row);
        }
        println!("mean response time (ms):");
        print!("{}", t2.render());
    }

    let out = "bench_results/fig7_response_time.csv";
    csv.write_csv(out).expect("write csv");
    println!("\nwrote {out}");
    println!(
        "\nexpected shape: sequential grows sharply with load; swingworker / executor /\n\
         pyjama-await / pyjama-nowait stay near the kernel's service time. The paper\n\
         reports Pyjama equal and often better than the manual approaches."
    );
    pyjama_bench::finish_trace(trace_path.as_deref());
}
