//! The §V-B HTTP throughput benchmark (Figure 9).
//!
//! "The load benchmark is set up with 100 virtual users, with each user
//! sending a constant number of requests. The throughput measures the
//! application's ability to process requests. … When the parallelization
//! of each event (using //omp parallel) is used in combination with either
//! Jetty or Pyjama, it initially results in dramatically better
//! throughput. Yet, as the number of concurrency worker threads is
//! increased, the throughput levels off …"

use std::sync::Arc;

use pyjama_http::{HttpServer, LoadGenerator, Response, ServerOptions, ServingPolicy};
use pyjama_metrics::ConnStats;
use pyjama_kernels::crypt::{encrypt_par, encrypt_seq, IdeaKey};
use pyjama_runtime::Runtime;

/// Which server implementation handles requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServerFlavor {
    /// Jetty-style fixed-pool thread-per-request.
    Jetty,
    /// Pyjama acceptor + `target virtual(worker) nowait` offload.
    Pyjama,
    /// Readiness-driven epoll reactor posting serving regions on kernel
    /// readiness (`ServingPolicy::Reactor`).
    Reactor,
}

impl ServerFlavor {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ServerFlavor::Jetty => "jetty",
            ServerFlavor::Pyjama => "pyjama",
            ServerFlavor::Reactor => "reactor",
        }
    }
}

/// One Figure 9 measurement.
#[derive(Clone, Debug)]
pub struct HttpBenchResult {
    /// Responses per second.
    pub throughput: f64,
    /// Mean response time.
    pub mean_response: std::time::Duration,
    /// Median response time.
    pub p50_response: std::time::Duration,
    /// 99th-percentile response time.
    pub p99_response: std::time::Duration,
    /// 99.9th-percentile response time (the C10K tail).
    pub p999_response: std::time::Duration,
    /// Requests that failed.
    pub failed: u64,
    /// Server-side connection-lifecycle counters (accepts, reuse,
    /// pipelining, idle evictions) — separates connection overhead from
    /// handler cost in the Fig. 9 comparison.
    pub conns: ConnStats,
    /// 99th-percentile scheduling delay between a region being posted and
    /// its handler starting to run, measured from the trace stage
    /// histogram (`RegionPosted → RegionRunBegin`). Isolates queueing cost
    /// from handler cost in the Fig. 9 curves. Zero for cells that post no
    /// regions (pure Jetty with tracing unavailable).
    pub queue_delay_p99: std::time::Duration,
}

/// Configuration of one Figure 9 cell.
#[derive(Clone, Copy, Debug)]
pub struct HttpBenchConfig {
    /// Concurrent virtual users (paper: 100).
    pub users: usize,
    /// Requests per user (constant, closed-loop).
    pub requests_per_user: usize,
    /// Serving worker threads (the swept x-axis).
    pub worker_threads: usize,
    /// `Some(n)`: each request's encryption runs under `omp parallel`
    /// with `n` threads (the paper's per-event parallelisation); `None`:
    /// plain sequential kernel per request.
    pub omp_parallel_per_event: Option<usize>,
    /// Request payload size in bytes.
    pub payload: usize,
    /// How many times the payload is encrypted per request (knob to make
    /// requests CPU-bound like the paper's kernels).
    pub work_factor: usize,
    /// Simulated backend I/O per request (ms). The paper's 16-core Xeon
    /// gave each request real parallel capacity; on a small CI machine
    /// this latency phase supplies the per-request concurrency headroom
    /// that makes worker-thread scaling observable (documented
    /// substitution, see DESIGN.md/EXPERIMENTS.md).
    pub io_ms: u64,
    /// HTTP keep-alive on both sides: each virtual user holds one
    /// persistent connection for all its requests and the server honors
    /// it. `false` reproduces the original connection-per-request
    /// (`connection: close`) baseline.
    pub keepalive: bool,
}

impl Default for HttpBenchConfig {
    fn default() -> Self {
        HttpBenchConfig {
            users: 100,
            requests_per_user: 5,
            worker_threads: 4,
            omp_parallel_per_event: None,
            payload: 2048,
            work_factor: 32,
            io_ms: 0,
            keepalive: true,
        }
    }
}

fn encryption_handler(
    config: &HttpBenchConfig,
) -> impl Fn(&pyjama_http::Request) -> Response + Send + Sync + 'static {
    let key = IdeaKey::benchmark_key();
    let omp = config.omp_parallel_per_event;
    let work_factor = config.work_factor.max(1);
    let io = std::time::Duration::from_millis(config.io_ms);
    move |req| {
        if io > std::time::Duration::ZERO {
            std::thread::sleep(io); // simulated backend fetch
        }
        let mut data = req.body.clone();
        while data.len() % 8 != 0 {
            data.push(0);
        }
        let mut work = data.repeat(work_factor);
        match omp {
            // "The encryption computation can be parallelized by adopting
            // traditional OpenMP directives."
            Some(n) => encrypt_par(&key, &mut work, n),
            None => encrypt_seq(&key, &mut work),
        }
        Response::ok(work[..64.min(work.len())].to_vec())
    }
}

/// Runs one (flavor × worker-threads × per-event-parallel × keep-alive)
/// cell.
pub fn run_http_benchmark(flavor: ServerFlavor, config: &HttpBenchConfig) -> HttpBenchResult {
    // The queue-delay column comes from the trace subsystem. Enable it for
    // the duration of this cell if the caller hasn't already (e.g. via
    // `--trace`), and window the collection to this cell's events so a
    // multi-cell sweep doesn't blend measurements. Small rings keep the
    // sweep's memory bounded: each cell spins up fresh server threads and
    // dead threads' rings stay registered until the final collect.
    let tracing_was_on = pyjama_trace::enabled();
    if !tracing_was_on {
        pyjama_trace::set_ring_capacity(8192);
        pyjama_trace::enable();
    }
    let cell_start_ns = pyjama_trace::now_ns();

    let opts = ServerOptions {
        keep_alive: config.keepalive,
        ..ServerOptions::default()
    };
    let mut server = match flavor {
        ServerFlavor::Jetty => HttpServer::start_with(
            ServingPolicy::JettyPool {
                threads: config.worker_threads,
            },
            opts,
            encryption_handler(config),
        )
        .expect("start jetty server"),
        ServerFlavor::Pyjama => {
            let rt = Arc::new(Runtime::new());
            rt.virtual_target_create_worker("worker", config.worker_threads);
            HttpServer::start_with(
                ServingPolicy::PyjamaVirtualTarget {
                    runtime: rt,
                    target: "worker".into(),
                },
                opts,
                encryption_handler(config),
            )
            .expect("start pyjama server")
        }
        ServerFlavor::Reactor => {
            let rt = Arc::new(Runtime::new());
            rt.virtual_target_create_worker("worker", config.worker_threads);
            HttpServer::start_with(
                ServingPolicy::Reactor {
                    runtime: rt,
                    target: "worker".into(),
                },
                opts,
                encryption_handler(config),
            )
            .expect("start reactor server")
        }
    };

    let payload = vec![0xA5u8; config.payload];
    let report = LoadGenerator::new(
        config.users,
        config.requests_per_user,
        "/encrypt",
        payload,
    )
    .with_keepalive(config.keepalive)
    .run(server.addr());
    let conns = server.conn_stats();
    server.shutdown();

    let window = pyjama_trace::collect().after(cell_start_ns);
    if !tracing_was_on {
        pyjama_trace::disable();
    }
    let queue_delay_p99 = std::time::Duration::from_nanos(window.queue_delay().quantile(0.99));

    HttpBenchResult {
        throughput: report.throughput,
        mean_response: report.mean_response,
        p50_response: report.p50_response,
        p99_response: report.p99_response,
        p999_response: report.p999_response,
        failed: report.failed,
        conns,
        queue_delay_p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `run_http_benchmark` flips the global trace switch for its window;
    /// serialize the tests that call it so cells don't blend.
    static CELL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn cell_lock() -> std::sync::MutexGuard<'static, ()> {
        CELL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tiny(worker_threads: usize, omp: Option<usize>) -> HttpBenchConfig {
        HttpBenchConfig {
            users: 8,
            requests_per_user: 3,
            worker_threads,
            omp_parallel_per_event: omp,
            payload: 512,
            work_factor: 8,
            io_ms: 2,
            keepalive: true,
        }
    }

    #[test]
    fn both_flavors_serve_all_requests() {
        let _g = cell_lock();
        for flavor in [
            ServerFlavor::Jetty,
            ServerFlavor::Pyjama,
            ServerFlavor::Reactor,
        ] {
            let r = run_http_benchmark(flavor, &tiny(2, None));
            assert_eq!(r.failed, 0, "{flavor:?}");
            assert!(r.throughput > 0.0, "{flavor:?}");
            assert!(
                r.conns.reused > 0,
                "{flavor:?}: keep-alive must reuse connections ({:?})",
                r.conns
            );
        }
    }

    #[test]
    fn keepalive_off_reproduces_conn_per_request_baseline() {
        let _g = cell_lock();
        let cfg = HttpBenchConfig {
            keepalive: false,
            ..tiny(2, None)
        };
        let r = run_http_benchmark(ServerFlavor::Jetty, &cfg);
        assert_eq!(r.failed, 0);
        assert_eq!(r.conns.reused, 0, "{:?}", r.conns);
        assert_eq!(r.conns.accepted, 24, "one connection per request");
    }

    #[test]
    fn queue_delay_p99_is_measured_for_pyjama() {
        let _g = cell_lock();
        let r = run_http_benchmark(ServerFlavor::Pyjama, &tiny(2, None));
        assert_eq!(r.failed, 0);
        assert!(
            r.queue_delay_p99 > std::time::Duration::ZERO,
            "pyjama cells must observe a posted→run delay, got {:?}",
            r.queue_delay_p99
        );
        // The cell turned tracing on only for its own window.
        assert!(!pyjama_trace::enabled());
    }

    #[test]
    fn per_event_parallel_works() {
        let _g = cell_lock();
        let r = run_http_benchmark(ServerFlavor::Pyjama, &tiny(2, Some(2)));
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn flavor_names() {
        assert_eq!(ServerFlavor::Jetty.name(), "jetty");
        assert_eq!(ServerFlavor::Pyjama.name(), "pyjama");
        assert_eq!(ServerFlavor::Reactor.name(), "reactor");
    }
}
