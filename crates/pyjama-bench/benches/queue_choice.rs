//! Ablation: the worker-pool queue data structure.
//!
//! `pyjama-runtime`'s `WorkerTarget` uses a `Mutex<VecDeque>` + `Condvar`
//! (blocking consumers, FIFO, supports `help_one` stealing from member
//! threads). This bench compares that choice against crossbeam's
//! lock-free `SegQueue` and its MPMC channel under the benchmark's actual
//! access pattern: a few producers posting closures, a few consumers
//! executing them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send>;

const JOBS: usize = 1_000;
const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;

fn run_mutex_vecdeque() {
    struct Q {
        q: Mutex<VecDeque<Job>>,
        cv: Condvar,
        done: AtomicUsize,
    }
    let q = Arc::new(Q {
        q: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        done: AtomicUsize::new(0),
    });
    std::thread::scope(|s| {
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            s.spawn(move || loop {
                let job = {
                    let mut g = q.q.lock();
                    loop {
                        if let Some(j) = g.pop_front() {
                            break Some(j);
                        }
                        if q.done.load(Ordering::SeqCst) >= JOBS {
                            break None;
                        }
                        q.cv.wait(&mut g);
                    }
                };
                match job {
                    Some(j) => {
                        j();
                        q.done.fetch_add(1, Ordering::SeqCst);
                    }
                    None => return,
                }
            });
        }
        for _ in 0..PRODUCERS {
            let q = Arc::clone(&q);
            s.spawn(move || {
                for _ in 0..JOBS / PRODUCERS {
                    q.q.lock().push_back(Box::new(|| {}));
                    q.cv.notify_one();
                }
            });
        }
        // Wake consumers at the end.
        while q.done.load(Ordering::SeqCst) < JOBS {
            std::thread::yield_now();
        }
        q.cv.notify_all();
    });
}

fn run_segqueue() {
    let q = Arc::new(crossbeam::queue::SegQueue::<Job>::new());
    let done = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            s.spawn(move || {
                while done.load(Ordering::SeqCst) < JOBS {
                    match q.pop() {
                        Some(j) => {
                            j();
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
        for _ in 0..PRODUCERS {
            let q = Arc::clone(&q);
            s.spawn(move || {
                for _ in 0..JOBS / PRODUCERS {
                    q.push(Box::new(|| {}));
                }
            });
        }
    });
}

fn run_channel() {
    let (tx, rx) = crossbeam::channel::unbounded::<Job>();
    std::thread::scope(|s| {
        for _ in 0..CONSUMERS {
            let rx = rx.clone();
            s.spawn(move || {
                while let Ok(j) = rx.recv() {
                    j();
                }
            });
        }
        for _ in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                for _ in 0..JOBS / PRODUCERS {
                    tx.send(Box::new(|| {})).unwrap();
                }
            });
        }
        drop(tx);
    });
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_choice");
    g.sample_size(20);
    g.bench_function("mutex_vecdeque_condvar", |b| b.iter(run_mutex_vecdeque));
    g.bench_function("crossbeam_segqueue_spin", |b| b.iter(run_segqueue));
    g.bench_function("crossbeam_channel", |b| b.iter(run_channel));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_queues
}
criterion_main!(benches);
