//! Ablation: per-invocation overhead of each scheduling mode vs a direct
//! call, and the cost of the Algorithm 1 member short-circuit.
//!
//! The paper argues "the introduction of additional overhead for the
//! concurrency of shorter computational spurts needs to be less of a
//! dilemma for programmers" — this bench quantifies that overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pyjama_runtime::{Mode, Runtime};

fn tiny_work() -> u64 {
    let mut x = 0u64;
    for i in 0..64u64 {
        x = x.wrapping_add(i * i);
    }
    black_box(x)
}

fn bench_modes(c: &mut Criterion) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 2);

    let mut g = c.benchmark_group("mode_overhead");

    g.bench_function("direct_call", |b| b.iter(tiny_work));

    g.bench_function("target_wait", |b| {
        b.iter(|| {
            rt.target("worker", Mode::Wait, || {
                tiny_work();
            })
        })
    });

    g.bench_function("target_await", |b| {
        b.iter(|| {
            rt.target("worker", Mode::Await, || {
                tiny_work();
            })
        })
    });

    g.bench_function("target_nowait_fire", |b| {
        // Cost at the *call site* only (completion happens elsewhere).
        b.iter(|| {
            rt.target("worker", Mode::NoWait, || {
                tiny_work();
            })
        })
    });

    g.bench_function("target_nowait_roundtrip", |b| {
        b.iter(|| {
            let h = rt.target("worker", Mode::NoWait, || {
                tiny_work();
            });
            h.wait();
        })
    });

    g.bench_function("name_as_plus_wait_tag", |b| {
        b.iter(|| {
            rt.target("worker", Mode::name_as("bench"), || {
                tiny_work();
            });
            rt.wait_tag("bench");
        })
    });

    // Member short-circuit: invoking a target from inside that target runs
    // the block inline (Algorithm 1 line 6–7) — this measures how cheap
    // the "directive is simply ignored" path is.
    g.bench_function("member_short_circuit", |b| {
        let rt2 = Arc::clone(&rt);
        b.iter(|| {
            let rt3 = Arc::clone(&rt2);
            rt2.target("worker", Mode::Wait, move || {
                rt3.target("worker", Mode::Wait, || {
                    tiny_work();
                });
            })
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_modes
}
criterion_main!(benches);
