//! Ablation: the `await` logical barrier's *helping* vs plain blocking.
//!
//! When a worker thread awaits a block on another target, Algorithm 1 has
//! it process other tasks from its own queue ("processAnotherEventHandler")
//! instead of blocking. With a single-threaded pool and a backlog of
//! tasks, helping turns the wait time into useful work — this bench
//! measures total makespan with and without it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pyjama_runtime::{Mode, Runtime, TaskHandle};

fn work(us: u64) {
    let end = std::time::Instant::now() + std::time::Duration::from_micros(us);
    let mut x = 0u64;
    while std::time::Instant::now() < end {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    black_box(x);
}

/// Queue BACKLOG tasks on a 1-thread pool, then have that pool's thread
/// synchronise with a block on another target. With `await` it helps drain
/// its own backlog during the wait; with plain handle.wait() it idles.
fn makespan(rt: &Arc<Runtime>, helping: bool) -> std::time::Duration {
    const BACKLOG: usize = 8;
    let t0 = std::time::Instant::now();
    let outer = {
        let rt = Arc::clone(rt);
        move || {
            let mut handles: Vec<TaskHandle> = Vec::new();
            for _ in 0..BACKLOG {
                handles.push(rt.target("pool", Mode::NoWait, || work(300)));
            }
            if helping {
                // await: helps run the backlog while "other" computes.
                rt.target("other", Mode::Await, || work(2_000));
            } else {
                // plain blocking wait on the other target's block.
                let h = rt.target("other", Mode::NoWait, || work(2_000));
                h.wait();
            }
            for h in handles {
                h.wait();
            }
        }
    };
    rt.target("pool", Mode::Wait, outer);
    t0.elapsed()
}

fn bench_await(c: &mut Criterion) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("pool", 1);
    rt.virtual_target_create_worker("other", 1);

    let mut g = c.benchmark_group("await_helping");
    g.bench_function("await_helps_backlog", |b| {
        b.iter(|| makespan(&rt, true))
    });
    g.bench_function("blocking_wait_idles", |b| {
        b.iter(|| makespan(&rt, false))
    });
    // No backlog: there is nothing to help with, so the awaiting thread
    // takes the pure park/wake path — parks once, is woken by the block's
    // terminal transition. Measures barrier overhead beyond the block
    // itself (the old polling park added up to a full 200µs quantum here).
    g.bench_function("await_no_backlog_pure_wake", |b| {
        b.iter(|| rt.target("other", Mode::Await, || work(300)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_await
}
criterion_main!(benches);
