//! Ablation: worksharing schedules on balanced vs irregular loops.
//!
//! Static should win on uniform iterations (no shared-counter traffic);
//! dynamic/guided should win when iteration cost is skewed — the classic
//! OpenMP trade-off the kernels rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pyjama_omp::{parallel_for, Schedule};

const N: usize = 4_096;
const THREADS: usize = 4;

fn uniform_iteration(i: usize) -> u64 {
    let mut x = i as u64;
    for _ in 0..200 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    x
}

/// Skewed: the last 10% of the index space costs ~20x the rest (like the
/// ray tracer's sphere-dense scanlines).
fn skewed_iteration(i: usize) -> u64 {
    let reps = if i >= N - N / 10 { 4_000 } else { 200 };
    let mut x = i as u64;
    for _ in 0..reps {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    x
}

fn bench_schedules(c: &mut Criterion) {
    let schedules: [(&str, Schedule); 4] = [
        ("static", Schedule::Static { chunk: None }),
        ("static_chunk16", Schedule::Static { chunk: Some(16) }),
        ("dynamic16", Schedule::Dynamic { chunk: 16 }),
        ("guided4", Schedule::Guided { min_chunk: 4 }),
    ];

    let mut g = c.benchmark_group("omp_schedule");
    for (name, sched) in schedules {
        g.bench_with_input(BenchmarkId::new("uniform", name), &sched, |b, &s| {
            b.iter(|| {
                parallel_for(THREADS, 0..N, s, |i| {
                    black_box(uniform_iteration(i));
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("skewed", name), &sched, |b, &s| {
            b.iter(|| {
                parallel_for(THREADS, 0..N, s, |i| {
                    black_box(skewed_iteration(i));
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schedules
}
criterion_main!(benches);
