//! Post→dispatch latency of an event arriving while the EDT is blocked in
//! an `await` logical barrier.
//!
//! This is the latency the wake-driven barrier exists to fix: the old
//! implementation parked in 200µs quanta, so an event posted right after
//! the EDT went to sleep waited out the remainder of the quantum before
//! being helped. With real wakeups the posting thread notifies the parked
//! EDT directly and the event is dispatched as fast as a condvar handoff.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_events::Edt;
use pyjama_runtime::{Mode, Runtime};

fn bench_wake_latency(c: &mut Criterion) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 1);
    let edt = Edt::spawn("edt");
    let h = edt.handle();

    let mut g = c.benchmark_group("wake_latency");
    g.bench_function("post_to_dispatch_during_await", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                // Hold the EDT inside an await barrier: the awaited worker
                // block only returns once we release the gate, so the probe
                // below can only be dispatched by the barrier's helping.
                let (gate_tx, gate_rx) = mpsc::channel::<()>();
                let (entered_tx, entered_rx) = mpsc::channel::<()>();
                let (ack_tx, ack_rx) = mpsc::channel::<Instant>();
                let rt2 = Arc::clone(&rt);
                h.post(move || {
                    rt2.target("worker", Mode::Await, move || {
                        entered_tx.send(()).unwrap();
                        let _ = gate_rx.recv();
                    });
                });
                entered_rx.recv().unwrap();
                let t0 = Instant::now();
                h.post(move || {
                    let _ = ack_tx.send(Instant::now());
                });
                let dispatched_at = ack_rx.recv().unwrap();
                total += dispatched_at.duration_since(t0);
                gate_tx.send(()).unwrap();
            }
            total
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_wake_latency
}
criterion_main!(benches);
