//! Fork-join region overhead: pooled hot teams vs spawn-per-region.
//!
//! `omp::parallel` dispatches onto persistent pooled workers (hot teams);
//! the baseline here is what the runtime used to do — spawn `nt - 1` OS
//! threads per region and join them (reimplemented locally with
//! `std::thread::scope`, the same join guarantee `parallel` gives). Two
//! body regimes:
//!
//! * **empty** — pure fork-join overhead, nothing to amortise against.
//!   This is where the pool must win outright: the gate asserts the pooled
//!   path is ≥ 5× faster than spawn-per-region at 4 threads.
//! * **small kernel** — ~20 µs of compute per member, the smallest handler
//!   the paper's evaluation would offload. Reported, not gated: overhead
//!   shrinks toward the noise floor as the body grows, which is the point.
//!
//! Not a criterion bench: the assertions are the artifact, run as
//! `cargo bench -p pyjama-bench --bench region_overhead`. CI compiles it
//! with `cargo bench --no-run` and smoke-runs one short iteration with
//! `PJ_BENCH_QUICK=1` (fewer regions/rounds, same gate — the 5× margin is
//! wide enough to hold on a noisy shared runner; full runs measure > 20×).
//!
//! Methodology mirrors `trace_overhead`: interleaved pooled/spawn rounds so
//! drift hits both arms, best-of-N per arm (min estimates the cost of the
//! code path; everything above it is scheduler noise).

use std::time::Instant;

use pyjama_omp::{parallel, team_stats};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const GATE_THREADS: usize = 4;
const MIN_POOLED_SPEEDUP: f64 = 5.0;

fn quick() -> bool {
    std::env::var_os("PJ_BENCH_QUICK").is_some()
}

/// ~20 µs of un-elidable compute per member, the "smallest real kernel".
fn small_kernel() {
    let mut acc = 0u64;
    for i in 0..20_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// The pre-pool implementation of a parallel region: spawn every non-master
/// member, run member 0 inline, join at scope exit.
fn spawn_region(nt: usize, body: &(dyn Fn(usize) + Sync)) {
    if nt == 1 {
        body(0);
        return;
    }
    std::thread::scope(|s| {
        for tid in 1..nt {
            s.spawn(move || body(tid));
        }
        body(0);
    });
}

/// Wall time of `regions` back-to-back pooled regions, ns.
fn drive_pooled(nt: usize, regions: usize, body: &(dyn Fn(usize) + Sync)) -> u64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        parallel(nt, |ctx| body(ctx.thread_num()));
    }
    t0.elapsed().as_nanos() as u64
}

/// Wall time of `regions` back-to-back spawn-per-region regions, ns.
fn drive_spawn(nt: usize, regions: usize, body: &(dyn Fn(usize) + Sync)) -> u64 {
    let t0 = Instant::now();
    for _ in 0..regions {
        // black_box: keep the nt == 1 inline path from being elided whole.
        spawn_region(std::hint::black_box(nt), body);
    }
    t0.elapsed().as_nanos() as u64
}

/// Interleaved best-of-`rounds` comparison. Returns (pooled, spawn) ns.
fn compare(nt: usize, regions: usize, rounds: usize, body: &(dyn Fn(usize) + Sync)) -> (u64, u64) {
    let mut best_pooled = u64::MAX;
    let mut best_spawn = u64::MAX;
    for _ in 0..rounds {
        best_pooled = best_pooled.min(drive_pooled(nt, regions, body));
        best_spawn = best_spawn.min(drive_spawn(nt, regions, body));
    }
    (best_pooled, best_spawn)
}

fn report(label: &str, nt: usize, regions: usize, pooled: u64, spawn: u64) -> f64 {
    let pooled_per = pooled as f64 / regions as f64;
    let spawn_per = spawn as f64 / regions as f64;
    let speedup = spawn_per / pooled_per;
    println!(
        "{label:12} nt={nt}  pooled {pooled_per:9.0} ns/region  spawn {spawn_per:9.0} ns/region  \
         speedup {speedup:6.1}x"
    );
    speedup
}

fn main() {
    let (regions, rounds) = if quick() { (60, 2) } else { (400, 7) };
    println!(
        "region_overhead: {regions} regions/arm, best-of-{rounds}{}",
        if quick() { " (quick)" } else { "" }
    );

    // Warm the pool and every hot-team size so the rounds measure
    // steady-state dispatch, not first-spawn cost.
    for &nt in &THREAD_COUNTS {
        drive_pooled(nt, 3, &|_| {});
    }

    let before = team_stats();
    let mut gated_speedup = None;
    for &nt in &THREAD_COUNTS {
        let (pooled, spawn) = compare(nt, regions, rounds, &|_| {});
        let speedup = report("empty", nt, regions, pooled, spawn);
        if nt == GATE_THREADS {
            gated_speedup = Some(speedup);
        }
    }
    for &nt in &THREAD_COUNTS {
        let (pooled, spawn) = compare(nt, regions, rounds, &|_| small_kernel());
        report("small-kernel", nt, regions, pooled, spawn);
    }

    let d = team_stats().since(&before);
    println!(
        "team stats over the measured rounds: {} regions forked ({} hot), {} spawned / {} reused, \
         barrier spins {} / parks {}",
        d.regions_forked,
        d.regions_hot,
        d.threads_spawned,
        d.threads_reused,
        d.barrier_spins,
        d.barrier_parks
    );
    assert!(
        d.activations_conserved(),
        "spawned {} + reused {} != activations {}",
        d.threads_spawned,
        d.threads_reused,
        d.member_activations
    );
    // Steady state: the spawn arm churns OS threads every region, the
    // pooled arm must not.
    assert!(
        d.threads_spawned <= 16,
        "pooled arm must not churn threads in steady state (spawned {})",
        d.threads_spawned
    );

    let speedup = gated_speedup.expect("gate thread count measured");
    assert!(
        speedup >= MIN_POOLED_SPEEDUP,
        "pooled empty region at {GATE_THREADS} threads must be >= {MIN_POOLED_SPEEDUP}x faster \
         than spawn-per-region, got {speedup:.1}x"
    );
    println!("region overhead within budget ✓ (gate: {speedup:.1}x >= {MIN_POOLED_SPEEDUP}x)");
}
