//! Kernel benchmarks: sequential vs `omp parallel`, per Java Grande
//! kernel, at the event-handler sizes the GUI experiment uses.
//!
//! These are the building blocks of Figures 7/8: the sequential time is a
//! kernel's handler latency under the naive approach; the parallel time is
//! what sync-/async-parallel handlers pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pyjama_kernels::{KernelKind, Workload};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(15);
    for kind in KernelKind::ALL {
        let w = Workload::event_sized(kind);
        g.bench_with_input(BenchmarkId::new("seq", kind.name()), &w, |b, w| {
            b.iter(|| w.run(None))
        });
        g.bench_with_input(BenchmarkId::new("par3", kind.name()), &w, |b, w| {
            b.iter(|| w.run(Some(3)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
