//! Tracing-cost budget check, three gates:
//!
//! 1. **Disabled is unmeasurable**: an emit site with tracing off is a
//!    branch on one relaxed atomic load — asserted < 15 ns/call (it
//!    measures well under 1 ns; the slack is for noisy runners).
//! 2. **Enabled throughput cost < 5%** on the `worker_throughput` drive
//!    pattern (one producer posting regions to a `WorkerTarget`, join the
//!    last) with a minimal-but-real job body (~20 µs of compute — a tiny
//!    handler by the paper's standards; its kernels are milliseconds).
//!    Measures ~3.5%.
//! 3. **Absolute per-job cost** on the *empty*-job drive — pure scheduler
//!    overhead, nothing to amortise against — asserted < 500 ns/job
//!    (~4 events/job, measures ~160 ns). A ratio gate is meaningless
//!    there: an empty job is ~650 ns of scheduler, so even a two-event
//!    tracer would exceed 5%; what this gate must catch is a regression
//!    that puts a syscall or lock on the emit path.
//!
//! The pool persists across rounds. A fresh thread's first emit allocates
//! and first-touch-faults its ring (~192 KiB at the default capacity) —
//! a one-time per-thread cost that dwarfs steady-state emission if the
//! harness tears the pool down every iteration. Real pools are long-lived,
//! so steady state is the honest thing to gate; the one-time cost is
//! documented in DESIGN.md §5f.
//!
//! Not a criterion bench: the point is the assertions, run as
//! `cargo bench -p pyjama-bench --bench trace_overhead`. CI compiles it
//! (`cargo bench --no-run`); the timing gates run on demand because
//! thresholds are too noisy for shared runners to gate merges on.
//!
//! Methodology: interleaved disabled/enabled rounds (thermal and
//! background drift hit both arms equally), best-of-N per arm (the min is
//! the right estimator for "cost of the code path"; everything above it is
//! scheduler noise).

use std::time::Instant;

use pyjama_runtime::{TargetRegion, VirtualTarget, WorkerTarget};
use pyjama_trace::{Stage, TraceId};

const JOBS: usize = 2_000;
const ROUNDS: usize = 9;
const THREADS: usize = 4;
const MAX_ENABLED_RATIO: f64 = 1.05;
const MAX_EMPTY_JOB_OVERHEAD_NS: f64 = 500.0;

/// ~20 µs of un-elidable compute, the "smallest real handler".
fn small_job() {
    let mut acc = 0u64;
    for i in 0..20_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// One `worker_throughput` iteration against a persistent pool: post JOBS
/// regions, wait for the last. Returns wall time in nanoseconds.
fn drive(w: &WorkerTarget, job: fn()) -> u64 {
    let t0 = Instant::now();
    let mut last = None;
    for _ in 0..JOBS {
        let region = TargetRegion::new("bench", job);
        last = Some(region.handle());
        w.post(region);
    }
    last.unwrap().join();
    t0.elapsed().as_nanos() as u64
}

/// Interleaved best-of-ROUNDS comparison. Returns (disabled, enabled) ns.
fn compare(w: &WorkerTarget, job: fn()) -> (u64, u64) {
    let mut best_off = u64::MAX;
    let mut best_on = u64::MAX;
    for _ in 0..ROUNDS {
        pyjama_trace::disable();
        best_off = best_off.min(drive(w, job));
        pyjama_trace::enable();
        best_on = best_on.min(drive(w, job));
        pyjama_trace::disable();
    }
    (best_off, best_on)
}

fn main() {
    // Small rings: we need the cost of recording, not the record itself.
    pyjama_trace::set_ring_capacity(8192);

    // --- gate 1: disabled path is one relaxed load ----------------------
    pyjama_trace::disable();
    let probes: u64 = 10_000_000;
    let id = TraceId::mint(); // NONE while disabled
    let t0 = Instant::now();
    for i in 0..probes {
        pyjama_trace::emit(id, Stage::RegionPosted, i as u32);
    }
    let per_emit_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
    println!("disabled emit: {per_emit_ns:.2} ns/call over {probes} calls");
    assert!(
        per_emit_ns < 15.0,
        "disabled emit must be a branch on one atomic load, got {per_emit_ns:.2} ns/call"
    );

    let w = WorkerTarget::new("bench", THREADS);
    // Warm-up with tracing on: registers + faults every member's ring so
    // the rounds below measure steady-state emission.
    pyjama_trace::enable();
    drive(&w, small_job);
    pyjama_trace::disable();
    drive(&w, small_job);

    // --- gate 2: <5% throughput cost with a minimal real job ------------
    let (off, on) = compare(&w, small_job);
    let ratio = on as f64 / off as f64;
    println!(
        "small-job drive best-of-{ROUNDS}: disabled {:.2} ms, enabled {:.2} ms — ratio {ratio:.3} \
         ({JOBS} jobs × ~20 µs, {THREADS} threads)",
        off as f64 / 1e6,
        on as f64 / 1e6
    );
    assert!(
        ratio < MAX_ENABLED_RATIO,
        "tracing enabled cost {:.1}% exceeds the {:.0}% budget",
        (ratio - 1.0) * 100.0,
        (MAX_ENABLED_RATIO - 1.0) * 100.0
    );

    // --- gate 3: absolute cost per empty job -----------------------------
    let (off, on) = compare(&w, || {});
    let per_job_ns = (on.saturating_sub(off)) as f64 / JOBS as f64;
    println!(
        "empty-job drive best-of-{ROUNDS}: disabled {:.2} ms, enabled {:.2} ms — \
         {per_job_ns:.0} ns/job tracing cost ({:.1}% of pure scheduler overhead)",
        off as f64 / 1e6,
        on as f64 / 1e6,
        (on as f64 / off as f64 - 1.0) * 100.0
    );
    assert!(
        per_job_ns < MAX_EMPTY_JOB_OVERHEAD_NS,
        "tracing an empty job cost {per_job_ns:.0} ns, budget {MAX_EMPTY_JOB_OVERHEAD_NS} ns \
         (~4 events/job; did the emit path grow a syscall or a lock?)"
    );
    w.shutdown();
    println!("trace overhead within budget ✓");
}
