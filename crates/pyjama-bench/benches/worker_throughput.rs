//! Submit→complete throughput of the work-stealing `WorkerTarget`
//! scheduler, against the single shared `Mutex<VecDeque>` + `Condvar` pool
//! it replaced, at 1/2/4/8 pool threads.
//!
//! One external producer posts `JOBS` trivial regions and waits for the
//! last to finish — the same access pattern `Runtime::target(...,
//! Mode::NoWait)` produces. At 1 thread this measures pure scheduler
//! overhead (the stealer path never runs); at higher thread counts it
//! measures how well submission scales when every consumer is fighting
//! over the incoming work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::{Condvar, Mutex};
use pyjama_runtime::{TargetRegion, VirtualTarget, WorkerTarget};

const JOBS: usize = 1_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The pre-work-stealing pool: one shared FIFO under a single lock, all
/// consumers blocking on one condvar. Kept here as the bench baseline.
struct SingleQueuePool {
    shared: Arc<SingleQueueShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

struct SingleQueueShared {
    queue: Mutex<VecDeque<Arc<TargetRegion>>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl SingleQueuePool {
    fn new(n: usize) -> Self {
        let shared = Arc::new(SingleQueueShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let region = {
                        let mut g = shared.queue.lock();
                        loop {
                            if let Some(r) = g.pop_front() {
                                break Some(r);
                            }
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            shared.cv.wait(&mut g);
                        }
                    };
                    match region {
                        Some(r) => r.execute(),
                        None => return,
                    }
                })
            })
            .collect();
        SingleQueuePool { shared, threads }
    }

    fn post(&self, region: Arc<TargetRegion>) {
        self.shared.queue.lock().push_back(region);
        self.shared.cv.notify_one();
    }

    fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn drive<P: Fn(Arc<TargetRegion>)>(post: P) {
    let mut last = None;
    for _ in 0..JOBS {
        let region = TargetRegion::new("bench", || {});
        last = Some(region.handle());
        post(region);
    }
    last.unwrap().join();
}

fn bench_worker_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("worker_throughput");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(JOBS as u64));
    for n in THREADS {
        g.bench_with_input(
            BenchmarkId::new("work_stealing", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || WorkerTarget::new("bench", n),
                    |w| {
                        drive(|r| w.post(r));
                        w.shutdown();
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("single_queue_baseline", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || SingleQueuePool::new(n),
                    |p| {
                        drive(|r| p.post(r));
                        p.shutdown();
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_worker_throughput
}
criterion_main!(benches);
