//! PJ engine ablation: register bytecode VM vs tree-walking interpreter.
//!
//! Two regimes, mirroring how the compiler is actually used:
//!
//! * **compute kernels** (fib, mandel, loop-sum) — directive-free PJ where
//!   execution cost is pure engine overhead: dispatch, variable access,
//!   call frames. This is where lowering to registers must pay: the gate
//!   asserts the VM is ≥ 10× faster than the interpreter on every kernel.
//! * **directive-heavy** — a program that is mostly `target`/`parallel for`
//!   dispatch. Both engines drive the same runtime substrates, so the VM
//!   can't be much faster here and doesn't need to be; the gate is parity
//!   of *output* plus a sanity bound that the VM is not slower than 1.5×.
//!
//! Not a criterion bench: the assertions are the artifact, run as
//! `cargo bench -p pyjama-bench --bench pj_vm`. CI compiles it and
//! smoke-runs one short iteration with `PJ_BENCH_QUICK=1` (smaller kernels,
//! same 10× gate — full runs measure well above it).
//!
//! Methodology mirrors `region_overhead`: interleaved engine rounds so
//! drift hits both arms, best-of-N per arm (min estimates the cost of the
//! code path). Results land in `bench_results/pj_vm.{txt,csv}`.

use std::sync::Arc;
use std::time::Instant;

use pyjama_bench::report::Table;
use pyjama_compiler::{parse, vm_stats, Engine, ExecConfig, Interpreter, RunOutput};

const MIN_VM_SPEEDUP: f64 = 10.0;
const MAX_VM_DIRECTIVE_SLOWDOWN: f64 = 1.5;

fn quick() -> bool {
    std::env::var_os("PJ_BENCH_QUICK").is_some()
}

/// Slim config: one pool worker, no EDT — runtime setup is part of `run()`
/// and identical for both arms; keep it small so the kernels dominate.
fn config(engine: Engine) -> ExecConfig {
    ExecConfig {
        engine,
        worker_threads: 1,
        with_edt: false,
        ..Default::default()
    }
}

fn kernels(quick: bool) -> Vec<(&'static str, String)> {
    // Sizes chosen so the interpreter arm stays in the tens-of-ms range
    // (quick: low ms) — enough signal that pool setup is noise.
    // fib stays large even in quick mode: pool setup is a fixed cost on
    // both arms and drags the measured ratio toward 1x on tiny kernels.
    let (fib_n, mandel_h, loop_n) = if quick { (18, 8, 60_000) } else { (20, 24, 600_000) };
    vec![
        (
            "fib",
            format!(
                r#"fn fib(n) {{ if n < 2 {{ return n; }} return fib(n - 1) + fib(n - 2); }}
                fn main() {{ return fib({fib_n}); }}"#
            ),
        ),
        (
            "mandel",
            format!(
                r#"fn escape(cr, ci) {{
                    let zr = 0.0; let zi = 0.0; let it = 0;
                    while it < 64 {{
                        let zr2 = zr * zr; let zi2 = zi * zi;
                        if zr2 + zi2 > 4.0 {{ return it; }}
                        zi = 2.0 * zr * zi + ci;
                        zr = zr2 - zi2 + cr;
                        it += 1;
                    }}
                    return 64;
                }}
                fn main() {{
                    let total = 0;
                    for y in 0..{mandel_h} {{
                        for x in 0..32 {{
                            total += escape(float(x) / 12.0 - 2.0, float(y) / 8.0 - 1.0);
                        }}
                    }}
                    return total;
                }}"#
            ),
        ),
        (
            "loop-sum",
            format!(
                r#"fn main() {{
                    let acc = 0;
                    let i = 0;
                    while i < {loop_n} {{
                        acc += i * 3 % 7;
                        i += 1;
                    }}
                    return acc;
                }}"#
            ),
        ),
    ]
}

fn directive_heavy(quick: bool) -> String {
    let (posts, iters) = if quick { (20, 32) } else { (100, 128) };
    format!(
        r#"fn main() {{
            let sums = zeros({iters});
            for k in 0..{posts} {{
                //#omp target virtual(worker)
                {{ sums[k % {iters}] = sums[k % {iters}] + 1; }}
            }}
            //#omp parallel for num_threads(2)
            for i in 0..{iters} {{
                //#omp critical
                {{ sums[i] = sums[i] + i; }}
            }}
            let total = 0;
            for i in 0..{iters} {{ total += sums[i]; }}
            print(total);
            return total;
        }}"#
    )
}

/// Wall time of one `run()` on `engine`, ns, plus the output.
fn time_run(interp: &Interpreter, engine: Engine) -> (u64, RunOutput) {
    let t0 = Instant::now();
    let out = interp.run(&config(engine)).expect("run");
    (t0.elapsed().as_nanos() as u64, out)
}

/// Interleaved best-of-`rounds` comparison. Returns (vm_ns, interp_ns).
fn compare(src: &str, rounds: usize) -> (u64, u64, RunOutput, RunOutput) {
    let program = Arc::new(parse(src).expect("parse"));
    let interp = Interpreter::new(program);
    // One warm-up per arm: first-touch effects (lazy statics, allocator).
    let (_, vm_out) = time_run(&interp, Engine::Vm);
    let (_, in_out) = time_run(&interp, Engine::Interp);
    let mut best_vm = u64::MAX;
    let mut best_in = u64::MAX;
    for _ in 0..rounds {
        best_vm = best_vm.min(time_run(&interp, Engine::Vm).0);
        best_in = best_in.min(time_run(&interp, Engine::Interp).0);
    }
    (best_vm, best_in, vm_out, in_out)
}

fn main() {
    let quick = quick();
    let rounds = if quick { 2 } else { 5 };
    println!(
        "pj_vm: register VM vs tree-walking interpreter, best-of-{rounds}{}",
        if quick { " (quick)" } else { "" }
    );

    let mut txt = String::new();
    let mut table = Table::new(&["kernel", "vm_ms", "interp_ms", "speedup", "gate"]);
    let stats0 = vm_stats();
    let mut failed = Vec::new();

    for (name, src) in kernels(quick) {
        let (vm, interp, vm_out, in_out) = compare(&src, rounds);
        assert_eq!(vm_out.result, in_out.result, "{name}: engines disagree");
        let speedup = interp as f64 / vm as f64;
        let line = format!(
            "{name:12} vm {:9.3} ms  interp {:9.3} ms  speedup {speedup:6.1}x (gate >= {MIN_VM_SPEEDUP}x)",
            vm as f64 / 1e6,
            interp as f64 / 1e6,
        );
        println!("{line}");
        txt.push_str(&line);
        txt.push('\n');
        table.row(vec![
            name.to_string(),
            format!("{:.3}", vm as f64 / 1e6),
            format!("{:.3}", interp as f64 / 1e6),
            format!("{speedup:.2}"),
            format!(">={MIN_VM_SPEEDUP}"),
        ]);
        if speedup < MIN_VM_SPEEDUP {
            failed.push((name, speedup));
        }
    }

    let src = directive_heavy(quick);
    let (vm, interp, vm_out, in_out) = compare(&src, rounds);
    assert_eq!(vm_out.output, in_out.output, "directive-heavy output parity");
    assert_eq!(vm_out.result, in_out.result);
    let ratio = vm as f64 / interp as f64;
    let line = format!(
        "{:12} vm {:9.3} ms  interp {:9.3} ms  vm/interp {ratio:5.2} (parity; gate <= {MAX_VM_DIRECTIVE_SLOWDOWN})",
        "directives",
        vm as f64 / 1e6,
        interp as f64 / 1e6,
    );
    println!("{line}");
    txt.push_str(&line);
    txt.push('\n');
    table.row(vec![
        "directives".to_string(),
        format!("{:.3}", vm as f64 / 1e6),
        format!("{:.3}", interp as f64 / 1e6),
        format!("{:.2}", 1.0 / ratio),
        format!("<={MAX_VM_DIRECTIVE_SLOWDOWN}x-slowdown"),
    ]);

    let d = vm_stats().since(&stats0);
    let line = format!(
        "vm counters over the run: {} ops, {} frames, {} target dispatches, {} team regions",
        d.ops_executed, d.frames_pushed, d.target_dispatches, d.team_regions
    );
    println!("{line}");
    txt.push_str(&line);
    txt.push('\n');
    assert!(d.ops_executed > 0 && d.frames_pushed > 0);
    assert!(d.target_dispatches > 0 && d.team_regions > 0);

    std::fs::create_dir_all("bench_results").ok();
    std::fs::write("bench_results/pj_vm.txt", &txt).expect("write txt");
    table.write_csv("bench_results/pj_vm.csv").expect("write csv");
    println!("wrote bench_results/pj_vm.txt, bench_results/pj_vm.csv");

    assert!(
        failed.is_empty(),
        "VM below the {MIN_VM_SPEEDUP}x gate on: {failed:?}"
    );
    assert!(
        ratio <= MAX_VM_DIRECTIVE_SLOWDOWN,
        "VM must not lag the interpreter on directive-heavy code: vm/interp = {ratio:.2}"
    );
    println!("pj_vm gates hold ✓");
}
