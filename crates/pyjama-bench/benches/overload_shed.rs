//! Admission-control overload shedding and live-reconfiguration gates.
//!
//! Three asserted gates, which are the artifact (not a criterion bench —
//! run as `cargo bench -p pyjama-bench --bench overload_shed`; CI
//! smoke-runs it with `PJ_BENCH_QUICK=1`):
//!
//! 1. **Snapshot-read overhead** — one `ConfigCell` read (the per-request
//!    cost the serving loop pays to follow live config) must stay ≤ 2
//!    ns/op, measured as best-of-rounds over a hot loop.
//! 2. **Live resize under load** — shrinking the worker pool mid-wave must
//!    lose nothing: zero failed requests, exactly one applied generation.
//! 3. **Overload shed** — at ~8× closed-loop saturation of a
//!    sleep-handler server, the admission-controlled arm must keep the p99
//!    of *admitted* requests within 2× of the uncontended p99, while the
//!    unprotected baseline visibly degrades (its p99 at least 2× worse
//!    than the controlled arm's). The conservation law
//!    `offered == admitted + shed` is asserted on the server counters.
//!
//! The handler sleeps rather than computes so the serving capacity is
//! deadline-bound, not CPU-bound — the gate then measures queueing policy,
//! not scheduler contention on a small runner.
//!
//! Results land in `bench_results/overload_shed.{txt,csv}`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_control::{Config, ControlPlane};
use pyjama_http::{HttpServer, LoadGenerator, Request, Response, ServerOptions, ServingPolicy};
use pyjama_runtime::Runtime;

const WORKERS: usize = 4;
/// Handler "service time": a sleep, so capacity is deadline-bound.
const SERVICE: Duration = Duration::from_millis(2);
/// Gate 1 budget: one Acquire load plus a dereference.
const MAX_READ_NS: f64 = 2.0;
/// Gate 3 budgets.
const MAX_CONTROLLED_P99_RATIO: f64 = 2.0;
const MIN_BASELINE_DEGRADATION: f64 = 2.0;

fn quick() -> bool {
    std::env::var("PJ_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn sleep_handler(_req: &Request) -> Response {
    std::thread::sleep(SERVICE);
    Response::ok(b"done".to_vec())
}

/// A controlled Pyjama-policy server over a fresh `WORKERS`-thread target.
fn start_server(plane: &ControlPlane) -> HttpServer {
    let rt = Arc::new(Runtime::new());
    let target = rt.virtual_target_create_worker("worker", WORKERS);
    plane.attach_worker_target(&target);
    HttpServer::start_controlled(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: rt,
            target: "worker".into(),
        },
        ServerOptions::default(),
        plane,
        sleep_handler,
    )
    .expect("start controlled server")
}

fn apply(plane: &ControlPlane, f: impl FnOnce(&mut Config)) {
    let mut cfg = plane.config();
    f(&mut cfg);
    plane.apply(cfg).expect("config apply");
}

// ------------------------------------------------- gate 1: snapshot reads

/// Best-of-rounds ns per `ConfigHandle::read` over a hot loop.
fn measure_read_ns(rounds: usize, iters: u64) -> f64 {
    let plane = ControlPlane::new();
    apply(&plane, |c| c.workers = WORKERS);
    let handle = plane.handle();
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let mut acc = 0u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            acc = acc.wrapping_add(std::hint::black_box(handle.read()).generation);
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(acc);
        best = best.min(ns);
    }
    best
}

// ---------------------------------------------- gate 2: resize under load

struct ResizeOutcome {
    failed: u64,
    completed: u64,
    applied_delta: u64,
    generation_delta: u64,
}

fn measure_resize_under_load(requests_per_user: usize) -> ResizeOutcome {
    let plane = ControlPlane::new();
    apply(&plane, |c| c.workers = WORKERS);
    let mut server = start_server(&plane);
    let before = plane.stats();

    let addr = server.addr();
    let wave = std::thread::spawn(move || {
        LoadGenerator::new(WORKERS * 2, requests_per_user, "/w", vec![0u8; 16]).run(addr)
    });
    std::thread::sleep(Duration::from_millis(20));
    apply(&plane, |c| c.workers = WORKERS / 2);
    let report = wave.join().expect("wave");
    let after = plane.stats();
    server.shutdown();
    ResizeOutcome {
        failed: report.failed + report.shed,
        completed: report.completed,
        applied_delta: after.applied - before.applied,
        generation_delta: after.generation - before.generation,
    }
}

// -------------------------------------------------- gate 3: overload shed

struct Arm {
    label: &'static str,
    users: usize,
    p99: Duration,
    completed: u64,
    shed: u64,
    throughput: f64,
}

fn run_arm(
    label: &'static str,
    threshold: usize,
    users: usize,
    requests_per_user: usize,
) -> Arm {
    let plane = ControlPlane::new();
    apply(&plane, |c| {
        c.workers = WORKERS;
        c.admission_threshold = threshold;
    });
    let mut server = start_server(&plane);
    let report = LoadGenerator::new(users, requests_per_user, "/w", vec![0u8; 16])
        .with_shed_backoff(Duration::from_millis(4))
        .run(server.addr());
    assert_eq!(report.failed, 0, "{label}: no request may hard-fail");
    let adm = server.admission_stats();
    assert!(
        adm.balanced(),
        "{label}: conservation violated: offered {} != admitted {} + shed {}",
        adm.offered,
        adm.admitted,
        adm.shed
    );
    server.shutdown();
    Arm {
        label,
        users,
        p99: report.p99_response,
        completed: report.completed,
        shed: report.shed,
        throughput: report.throughput,
    }
}

fn main() {
    let (read_rounds, read_iters) = if quick() { (3, 200_000) } else { (7, 2_000_000) };
    let resize_reqs = if quick() { 20 } else { 60 };
    let shed_reqs = if quick() { 15 } else { 60 };

    let mut txt = String::new();
    let mut csv = String::from("gate,metric,value\n");

    // Gate 1: snapshot-read overhead.
    let read_ns = measure_read_ns(read_rounds, read_iters);
    println!("config snapshot read: {read_ns:.2} ns/op (budget {MAX_READ_NS} ns)");
    let _ = writeln!(txt, "snapshot_read_ns {read_ns:.3}  (budget {MAX_READ_NS})");
    let _ = writeln!(csv, "read,ns_per_op,{read_ns:.3}");
    assert!(
        read_ns <= MAX_READ_NS,
        "ConfigCell read {read_ns:.2} ns/op exceeds the {MAX_READ_NS} ns budget"
    );

    // Gate 2: live resize under load.
    let resize = measure_resize_under_load(resize_reqs);
    println!(
        "live shrink mid-wave: {} completed, {} failed, {} generation(s) applied",
        resize.completed, resize.failed, resize.applied_delta
    );
    let _ = writeln!(
        txt,
        "resize_under_load completed={} failed={} applied={}",
        resize.completed, resize.failed, resize.applied_delta
    );
    let _ = writeln!(csv, "resize,failed,{}", resize.failed);
    let _ = writeln!(csv, "resize,applied,{}", resize.applied_delta);
    assert_eq!(resize.failed, 0, "live resize must not fail or shed requests");
    assert_eq!(resize.completed, (WORKERS * 2 * resize_reqs) as u64);
    assert_eq!(resize.applied_delta, 1, "exactly one applied generation");
    assert_eq!(resize.generation_delta, 1);

    // Gate 3: overload shed. Uncontended reference first, then ~8x
    // closed-loop saturation with and without the admission gate.
    let uncontended = run_arm("uncontended", 0, WORKERS, shed_reqs);
    let baseline = run_arm("baseline-overload", 0, WORKERS * 8, shed_reqs);
    // Threshold: half the pool of queued headroom — an admitted request
    // waits at most ~(threshold/WORKERS + 1) service times.
    let controlled = run_arm("controlled-overload", WORKERS / 2, WORKERS * 8, shed_reqs);

    println!(
        "{:<20} {:>6} {:>10} {:>10} {:>8} {:>10}",
        "arm", "users", "p99_us", "req/s", "shed", "completed"
    );
    for arm in [&uncontended, &baseline, &controlled] {
        println!(
            "{:<20} {:>6} {:>10} {:>10.0} {:>8} {:>10}",
            arm.label,
            arm.users,
            arm.p99.as_micros(),
            arm.throughput,
            arm.shed,
            arm.completed
        );
        let _ = writeln!(
            txt,
            "{} users={} p99_us={} shed={} completed={}",
            arm.label,
            arm.users,
            arm.p99.as_micros(),
            arm.shed,
            arm.completed
        );
        let _ = writeln!(csv, "shed,{}_p99_us,{}", arm.label, arm.p99.as_micros());
    }

    let controlled_ratio = controlled.p99.as_secs_f64() / uncontended.p99.as_secs_f64().max(1e-9);
    let degradation = baseline.p99.as_secs_f64() / controlled.p99.as_secs_f64().max(1e-9);
    println!(
        "controlled p99 = {controlled_ratio:.2}x uncontended (budget {MAX_CONTROLLED_P99_RATIO}x); \
         baseline p99 = {degradation:.2}x controlled (must exceed {MIN_BASELINE_DEGRADATION}x)"
    );
    let _ = writeln!(txt, "controlled_p99_ratio {controlled_ratio:.3}");
    let _ = writeln!(txt, "baseline_degradation {degradation:.3}");
    let _ = writeln!(csv, "shed,controlled_p99_ratio,{controlled_ratio:.3}");
    let _ = writeln!(csv, "shed,baseline_degradation,{degradation:.3}");

    assert!(baseline.shed == 0 && uncontended.shed == 0, "threshold 0 must never shed");
    assert!(controlled.shed > 0, "8x overload past the threshold must shed");
    assert!(
        controlled_ratio <= MAX_CONTROLLED_P99_RATIO,
        "admitted p99 under overload is {controlled_ratio:.2}x uncontended, \
         budget {MAX_CONTROLLED_P99_RATIO}x"
    );
    assert!(
        degradation >= MIN_BASELINE_DEGRADATION,
        "unprotected baseline p99 only {degradation:.2}x the controlled arm — \
         overload did not degrade the baseline, gate is vacuous"
    );

    std::fs::create_dir_all("bench_results").ok();
    std::fs::write("bench_results/overload_shed.txt", &txt).expect("write txt");
    std::fs::write("bench_results/overload_shed.csv", &csv).expect("write csv");
    println!("wrote bench_results/overload_shed.txt, bench_results/overload_shed.csv");
    println!("overload-shed gates hold ✓");
}
