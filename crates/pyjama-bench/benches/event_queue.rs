//! Event-substrate microbenchmarks: queue operations and dispatch
//! round-trips — the fixed costs under every handler in the GUI benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pyjama_events::{Edt, Event, EventQueue, Priority};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    g.bench_function("push_pop_single_thread", |b| {
        let q = EventQueue::new();
        b.iter(|| {
            q.push(Event::new(|| {}));
            if let Some(e) = black_box(q.try_pop()) { e.dispatch() }
        })
    });

    g.bench_function("push_pop_priorities", |b| {
        let q = EventQueue::new();
        b.iter(|| {
            q.push(Event::new(|| {}).with_priority(Priority::Low));
            q.push(Event::new(|| {}).with_priority(Priority::High));
            q.push(Event::new(|| {}));
            while let Some(e) = q.try_pop() {
                e.dispatch();
            }
        })
    });

    g.bench_function("edt_invoke_and_wait_roundtrip", |b| {
        let edt = Edt::spawn("bench-edt");
        b.iter(|| edt.invoke_and_wait(|| black_box(42)));
    });

    g.bench_function("edt_invoke_later_throughput_100", |b| {
        let edt = Edt::spawn("bench-edt");
        b.iter(|| {
            for _ in 0..100 {
                edt.invoke_later(|| {});
            }
            edt.invoke_and_wait(|| {}); // barrier
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_queue
}
criterion_main!(benches);
