//! The allocation-free posting hot path: recycled regions vs the pre-PR
//! fresh-allocation path.
//!
//! Two workloads drive the same worker target with the same trivial
//! bodies, each in two arms:
//!
//! * **recycled** — the production path: `Runtime::target` with the label
//!   interned at registration, the region acquired from the recycler slab,
//!   the body stored inline (`InlineFn`). In steady state a post touches
//!   the global allocator zero times.
//! * **fresh** — what every post did before the recycler: a per-post
//!   registry lookup, a `format!` label, a heap-boxed body closure, a
//!   fresh `Arc` + `Core` via [`TargetRegion::unpooled`], posted through
//!   the same `invoke_target_block` entry, all of it freed on the worker
//!   after the run.
//!
//! Three workloads:
//!
//! * **paced** — posts from an external thread through the injector in
//!   batches smaller than the recycler slab (an unbounded `nowait` burst
//!   would just measure queue growth). Carries the zero-allocation gate,
//!   measured by a counting global allocator over whole
//!   post→dispatch→run windows.
//! * **inline re-arm** — a member thread posts to its own pool in a
//!   loop, taking Algorithm 1's member short-circuit: acquire → execute
//!   → release, the full region lifecycle on one thread with no queues,
//!   wakes, or scheduler in the measurement. Carries the throughput
//!   gate: it charges each arm *all* of its costs on the same critical
//!   path — the recycled arm its reset, the fresh arm its `format!`,
//!   allocations *and* frees. (The cross-thread workloads' wall time is
//!   dominated by dispatch/wake costs identical in both arms, which on a
//!   small CI box dilutes the ratio below what the posting path actually
//!   gained.)
//! * **chain** — each region posts its successor from the worker thread
//!   (reactor re-arm, VM directive loops), ping-ponging between two
//!   pools (a same-pool post from a member thread would take the inline
//!   short-circuit and recurse). Reported for end-to-end evidence and
//!   the batched-dequeue dispatch mix, not gated.
//!
//! Gates (full mode):
//!
//! 1. **zero allocations per post in steady state** — the best paced
//!    window must be exactly 0 (best-of-K, because a preempted poster can
//!    race a worker's release against its own handle drop and force one
//!    legitimate fresh construction — noise adds allocations, it never
//!    removes them);
//! 2. **throughput** — the recycled inline re-arm loop must post ≥ 1.3×
//!    faster than the fresh one on a 4-worker pool.
//!
//! Under `PJ_BENCH_QUICK=1` the zero-alloc gate still holds (it is a
//! property, not a margin) while the throughput ratio is reported but not
//! asserted — one short CI round on a shared runner is not a measurement.
//!
//! Results land in `bench_results/post_hotpath.{txt,csv}` plus the
//! machine-readable `BENCH_hotpath.json` headline fold.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use pyjama_bench::perfjson::{fold_headlines, JsonObj};
use pyjama_bench::report::Table;
use pyjama_runtime::{alloc_stats, Mode, Runtime, TargetRegion};
use pyjama_trace::TraceId;

/// Counts every allocator entry (alloc, realloc, alloc_zeroed) process-wide.
/// Frees are not counted: the gate is about allocation pressure on the
/// posting path, and a free-only window would still mean the path allocated
/// somewhere else first.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const NAME: &str = "bench-a";
const NAME_B: &str = "bench-b";
const GATE_WORKERS: usize = 4;
const MIN_SPEEDUP: f64 = 1.3;
/// Posts in flight per pacing batch — safely under the recycler slab's
/// capacity so the steady state reuses rather than constructs.
const BATCH: usize = 32;

/// The pool a chain link running on `pool` posts its successor to.
fn other(pool: &'static str) -> &'static str {
    if pool == NAME {
        NAME_B
    } else {
        NAME
    }
}

fn quick() -> bool {
    pyjama_bench::quick_mode()
}

// ------------------------------------------------------- paced workload

/// Posts `n` trivial regions through the recycled hot path, paced in
/// batches, and waits for all of them to execute. Returns wall ns. The
/// completion counter is caller-provided so its allocation stays outside
/// any allocator-measurement window.
fn drive_recycled(rt: &Runtime, n: usize, done: &Arc<AtomicUsize>) -> u64 {
    done.store(0, Ordering::Relaxed);
    let t0 = Instant::now();
    let mut posted = 0usize;
    while posted < n {
        let batch = BATCH.min(n - posted);
        for _ in 0..batch {
            let done = Arc::clone(done);
            rt.target(NAME, Mode::NoWait, move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        posted += batch;
        while done.load(Ordering::Relaxed) < posted {
            std::thread::yield_now();
        }
    }
    t0.elapsed().as_nanos() as u64
}

/// Builds one pre-recycler region exactly the way every post built one
/// before this PR: the registry looked the target up per post, formatted
/// the diagnostic label from the runtime name (`black_box` keeps the
/// constant-named bench honest — the real path formats an arbitrary
/// `&str`), and the body was a heap `Box<dyn FnOnce>` (there was no
/// inline small-closure storage).
fn fresh_region(
    name: &str,
    body: impl FnOnce() + Send + 'static,
) -> std::sync::Arc<TargetRegion> {
    let name = std::hint::black_box(name);
    let label: Arc<str> = Arc::from(format!("target virtual({name})"));
    let boxed: Box<dyn FnOnce() + Send> = Box::new(body);
    TargetRegion::unpooled(label, TraceId::mint(), move || boxed())
}

/// Same paced workload through the pre-recycler path: per-post lookup,
/// `format!` label, boxed body, fresh `Arc` + `Core`, no slab.
fn drive_fresh(rt: &Runtime, n: usize, done: &Arc<AtomicUsize>) -> u64 {
    done.store(0, Ordering::Relaxed);
    let t0 = Instant::now();
    let mut posted = 0usize;
    while posted < n {
        let batch = BATCH.min(n - posted);
        for _ in 0..batch {
            let target = rt.lookup(NAME).expect("bench target registered");
            let done = Arc::clone(done);
            let region = fresh_region(NAME, move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
            rt.invoke_target_block(&target, Mode::NoWait, region);
        }
        posted += batch;
        while done.load(Ordering::Relaxed) < posted {
            std::thread::yield_now();
        }
    }
    t0.elapsed().as_nanos() as u64
}

/// Allocator-call delta over one window of `n` recycled-arm paced posts.
fn alloc_window(rt: &Runtime, n: usize, done: &Arc<AtomicUsize>) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    drive_recycled(rt, n, done);
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

// ------------------------------------------------- inline re-arm workload

/// Times `n` recycled posts from a member thread of the pool: each takes
/// the member short-circuit — label lookup, slab acquire (thread-local
/// cache hit in steady state), reset, inline execute, release back to the
/// cache. Measured inside the worker so pool dispatch of the outer block
/// is excluded. Returns ns for the whole loop.
fn inline_recycled(rt: &Arc<Runtime>, n: usize) -> u64 {
    let out = Arc::new(AtomicU64::new(0));
    let rt2 = Arc::clone(rt);
    let o = Arc::clone(&out);
    rt.target(NAME, Mode::Wait, move || {
        let t0 = Instant::now();
        for _ in 0..n {
            rt2.target(NAME, Mode::NoWait, || {});
        }
        o.store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    });
    out.load(Ordering::Relaxed)
}

/// The same loop, pre-recycler: per-post registry lookup, `format!`
/// label, boxed body, fresh `Arc` + `Core`, handle minted, inline
/// execute, then a plain drop (no slab — the pre-PR inline path never
/// parked regions), freeing everything the post allocated on the same
/// thread.
fn inline_fresh(rt: &Arc<Runtime>, n: usize) -> u64 {
    let out = Arc::new(AtomicU64::new(0));
    let rt2 = Arc::clone(rt);
    let o = Arc::clone(&out);
    rt.target(NAME, Mode::Wait, move || {
        let t0 = Instant::now();
        for _ in 0..n {
            let _target = rt2.lookup(NAME).expect("bench target registered");
            let region = fresh_region(NAME, || {});
            let handle = region.handle();
            region.execute();
            drop(region);
            drop(handle);
        }
        o.store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    });
    out.load(Ordering::Relaxed)
}

// ------------------------------------------------------- chain workload

/// Shared control block for one chain run: a link budget and a count of
/// finished chains (condvar-signalled so the driving thread blocks
/// instead of burning a CPU share spin-yielding). One `Arc` keeps the
/// chain closures at three inline words (`rt`, `ctl`, next-pool
/// `&'static str`).
struct ChainCtl {
    remaining: AtomicIsize,
    done: Mutex<usize>,
    cv: Condvar,
}

/// One link of a recycled re-arm chain: post a region to `pool`; its body
/// decrements the shared budget and posts the successor to the *other*
/// pool (from this pool's worker thread — release→acquire stays
/// on-thread), or marks the chain done.
fn chain_recycled(rt: Arc<Runtime>, ctl: Arc<ChainCtl>, pool: &'static str) {
    if ctl.remaining.fetch_sub(1, Ordering::Relaxed) <= 0 {
        *ctl.done.lock() += 1;
        ctl.cv.notify_all();
        return;
    }
    let rt2 = Arc::clone(&rt);
    let next = other(pool);
    rt.target(pool, Mode::NoWait, move || chain_recycled(rt2, ctl, next));
}

/// The same link through the pre-recycler path: per-post lookup (what
/// `try_target` does anyway), `format!` label, boxed body, fresh `Arc`
/// + `Core`, freed on the worker after the run.
fn chain_fresh(rt: Arc<Runtime>, ctl: Arc<ChainCtl>, pool: &'static str) {
    if ctl.remaining.fetch_sub(1, Ordering::Relaxed) <= 0 {
        *ctl.done.lock() += 1;
        ctl.cv.notify_all();
        return;
    }
    let target = rt.lookup(pool).expect("bench target registered");
    let rt2 = Arc::clone(&rt);
    let next = other(pool);
    let region = fresh_region(pool, move || chain_fresh(rt2, ctl, next));
    rt.invoke_target_block(&target, Mode::NoWait, region);
}

/// Runs `chains` concurrent chains totalling ~`total` regions, seeded
/// half-and-half into the two pools, and waits for every chain to finish.
/// Returns wall ns.
fn drive_chain(rt: &Arc<Runtime>, recycled: bool, total: usize, chains: usize) -> u64 {
    let ctl = Arc::new(ChainCtl {
        remaining: AtomicIsize::new(total as isize),
        done: Mutex::new(0),
        cv: Condvar::new(),
    });
    let t0 = Instant::now();
    for i in 0..chains {
        let rt2 = Arc::clone(rt);
        let c = Arc::clone(&ctl);
        let pool = if i % 2 == 0 { NAME } else { NAME_B };
        if recycled {
            chain_recycled(rt2, c, pool);
        } else {
            chain_fresh(rt2, c, pool);
        }
    }
    let mut g = ctl.done.lock();
    while *g < chains {
        ctl.cv.wait(&mut g);
    }
    t0.elapsed().as_nanos() as u64
}

fn main() {
    let (inline_posts, chain_total, rounds, windows, window_posts) = if quick() {
        (20_000, 4_000, 2, 3, 800)
    } else {
        (100_000, 40_000, 5, 5, 2_000)
    };
    let mut txt = String::new();
    let _ = writeln!(
        txt,
        "post_hotpath: {inline_posts} inline re-arms/arm, {chain_total} chained regions/arm, \
         best-of-{rounds}, {windows}x{window_posts}-post alloc windows{}",
        if quick() { " (quick)" } else { "" }
    );

    let mut table = Table::new(&[
        "workload",
        "arm",
        "workers",
        "posts",
        "ns_per_post",
        "allocs_per_post",
        "speedup",
    ]);
    let mut gate_speedup = None;
    let mut gate_min_allocs = None;

    for &workers in &[1usize, GATE_WORKERS] {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker(NAME, workers);
        rt.virtual_target_create_worker(NAME_B, workers);
        // Enough chains in flight that both pools' queues stay deep and
        // workers run long stretches instead of parking between hops —
        // park/unpark is a syscall that would dominate both arms equally.
        let chains = 16 * workers.max(2);

        // Warm everything the steady state reuses: pool threads, the
        // recycler slabs and per-worker caches, deque/injector/pending
        // capacities, the allocator's own free lists.
        let done = Arc::new(AtomicUsize::new(0));
        drive_recycled(&rt, 4 * BATCH, &done);
        drive_fresh(&rt, 2 * BATCH, &done);
        drive_chain(&rt, true, 8 * BATCH, chains);
        drive_chain(&rt, false, 4 * BATCH, chains);
        drive_recycled(&rt, 4 * BATCH, &done);

        // Zero-alloc gate: best paced window over K. A window can catch a
        // stray fresh construction (poster preempted between post and
        // handle drop), but a clean window proves the whole
        // post→dispatch→run path ran allocation-free.
        let mut min_allocs = u64::MAX;
        let mut per_window = Vec::new();
        for _ in 0..windows {
            let a = alloc_window(&rt, window_posts, &done);
            min_allocs = min_allocs.min(a);
            per_window.push(a);
        }
        if min_allocs > 0 {
            // One retry after extra warmup before declaring failure.
            drive_recycled(&rt, 8 * BATCH, &done);
            for _ in 0..windows {
                let a = alloc_window(&rt, window_posts, &done);
                min_allocs = min_allocs.min(a);
                per_window.push(a);
            }
        }

        // Throughput gate: interleaved best-of rounds of the inline
        // re-arm loop, both arms, timed on the member thread itself.
        let mut best_inl_rec = u64::MAX;
        let mut best_inl_fresh = u64::MAX;
        for _ in 0..rounds {
            best_inl_rec = best_inl_rec.min(inline_recycled(&rt, inline_posts));
            best_inl_fresh = best_inl_fresh.min(inline_fresh(&rt, inline_posts));
        }
        let inl_rec_per = best_inl_rec as f64 / inline_posts as f64;
        let inl_fresh_per = best_inl_fresh as f64 / inline_posts as f64;
        let inl_speedup = inl_fresh_per / inl_rec_per;

        // End-to-end evidence (not gated): interleaved best-of rounds of
        // the cross-pool chain workload, both arms.
        let (pool_a, pool_b) = (rt.lookup(NAME).unwrap(), rt.lookup(NAME_B).unwrap());
        let (before_a, before_b) = (pool_a.stats(), pool_b.stats());
        let mut best_recycled = u64::MAX;
        let mut best_fresh = u64::MAX;
        for _ in 0..rounds {
            best_recycled = best_recycled.min(drive_chain(&rt, true, chain_total, chains));
            best_fresh = best_fresh.min(drive_chain(&rt, false, chain_total, chains));
        }
        let (da, db) = (
            pool_a.stats().since(&before_a),
            pool_b.stats().since(&before_b),
        );

        let recycled_per = best_recycled as f64 / chain_total as f64;
        let fresh_per = best_fresh as f64 / chain_total as f64;
        let speedup = fresh_per / recycled_per;
        let _ = writeln!(
            txt,
            "workers={workers}  inline re-arm: recycled {inl_rec_per:5.0} ns/post  fresh \
             {inl_fresh_per:5.0} ns/post  speedup {inl_speedup:5.2}x  alloc windows \
             {per_window:?} (min {min_allocs})"
        );
        let _ = writeln!(
            txt,
            "  chain e2e: recycled {recycled_per:5.0} ns/region  fresh {fresh_per:5.0} \
             ns/region  speedup {speedup:5.2}x"
        );
        let _ = writeln!(
            txt,
            "  dispatch mix (both pools): local {} / steals {} (batches {}, moved {}) / \
             injector {} (batches {}, moved {})",
            da.local_pops + db.local_pops,
            da.steals + db.steals,
            da.steal_batches + db.steal_batches,
            da.steal_moved + db.steal_moved,
            da.injector_pops + db.injector_pops,
            da.injector_batches + db.injector_batches,
            da.injector_moved + db.injector_moved
        );
        table.row(vec![
            "inline".into(),
            "recycled".into(),
            workers.to_string(),
            inline_posts.to_string(),
            format!("{inl_rec_per:.0}"),
            format!("{:.2}", min_allocs as f64 / window_posts as f64),
            format!("{inl_speedup:.2}"),
        ]);
        table.row(vec![
            "inline".into(),
            "fresh".into(),
            workers.to_string(),
            inline_posts.to_string(),
            format!("{inl_fresh_per:.0}"),
            String::from("n/a"),
            String::from("1.00"),
        ]);
        table.row(vec![
            "chain".into(),
            "recycled".into(),
            workers.to_string(),
            chain_total.to_string(),
            format!("{recycled_per:.0}"),
            String::from("n/a"),
            format!("{speedup:.2}"),
        ]);
        table.row(vec![
            "chain".into(),
            "fresh".into(),
            workers.to_string(),
            chain_total.to_string(),
            format!("{fresh_per:.0}"),
            String::from("n/a"),
            String::from("1.00"),
        ]);

        if workers == GATE_WORKERS {
            gate_speedup = Some(inl_speedup);
            gate_min_allocs = Some(min_allocs);
        }

        drop(rt);
    }

    // Quiesce, then audit the recycler's books: every region ever
    // constructed is recycled, live, or dropped — nothing leaks, nothing
    // double-counts.
    let deadline = Instant::now() + std::time::Duration::from_secs(2);
    let mut al = alloc_stats();
    while !al.conserved() && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
        al = alloc_stats();
    }
    let _ = writeln!(
        txt,
        "recycler: allocated {} reused {} (reuse rate {:.4}) recycled {} live {} dropped {} \
         poisoned {}",
        al.allocated,
        al.reused,
        al.reuse_rate(),
        al.recycled,
        al.live,
        al.dropped,
        al.poisoned
    );

    let min_allocs = gate_min_allocs.expect("gate worker count measured");
    let speedup = gate_speedup.expect("gate worker count measured");
    if quick() {
        let _ = writeln!(
            txt,
            "quick mode: throughput gate reported only (speedup {speedup:.2}x, full gate >= \
             {MIN_SPEEDUP}x)"
        );
    }
    let _ = writeln!(
        txt,
        "gates: alloc windows min {min_allocs} (must be 0), inline re-arm speedup \
         {speedup:.2}x (full gate >= {MIN_SPEEDUP}x)"
    );

    // Artifacts first, gates after: a failed gate still leaves the report
    // on disk for diagnosis.
    print!("{txt}");
    std::fs::create_dir_all("bench_results").ok();
    std::fs::write("bench_results/post_hotpath.txt", &txt).expect("write txt");
    table.write_csv("bench_results/post_hotpath.csv").expect("write csv");

    // Machine-readable fold: this bench's headline plus every other
    // experiment's, re-read from the CSVs they wrote.
    let mut hot = JsonObj::new();
    hot.uint("workers", GATE_WORKERS as u64)
        .uint("posts", inline_posts as u64)
        .num("speedup", speedup)
        .uint("steady_state_allocs_per_post", min_allocs)
        .num("reuse_rate", al.reuse_rate())
        .bool("quick", quick());
    let mut doc = JsonObj::new();
    doc.str("bench", "post_hotpath")
        .str("source", "cargo bench -p pyjama-bench --bench post_hotpath")
        .obj("hotpath", hot)
        .obj("headlines", fold_headlines(Path::new("bench_results")));
    std::fs::write("BENCH_hotpath.json", doc.finish() + "\n").expect("write json");
    println!(
        "wrote bench_results/post_hotpath.txt, bench_results/post_hotpath.csv, BENCH_hotpath.json"
    );

    assert!(
        al.conserved(),
        "conservation law violated at quiesce: allocated {} != recycled {} + live {} + dropped {}",
        al.allocated,
        al.recycled,
        al.live,
        al.dropped
    );
    assert_eq!(
        min_allocs, 0,
        "steady-state posting must be allocation-free: best window still made {min_allocs} \
         allocator calls"
    );
    if !quick() {
        assert!(
            speedup >= MIN_SPEEDUP,
            "recycled inline re-arm on a {GATE_WORKERS}-worker pool must be >= \
             {MIN_SPEEDUP}x the fresh path, got {speedup:.2}x"
        );
    }
    println!("post hot path within budget ✓ (0 allocs/post, {speedup:.2}x)");
}
