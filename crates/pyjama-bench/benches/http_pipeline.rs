//! Persistent-connection serving pipeline: keep-alive vs
//! `connection: close`, per policy, at 4 workers on loopback.
//!
//! Two parts:
//!
//! 1. A load-generator pass (printed before criterion runs) reporting
//!    requests/s plus p50/p99 latency for every (policy × keep-alive)
//!    cell — the acceptance numbers: keep-alive should clear ≥ 2× the
//!    `connection: close` baseline with a light handler, because the
//!    baseline pays TCP setup/teardown and a cold codec per request.
//! 2. Criterion benches of single-request round-trip latency on a held
//!    connection vs a fresh connection per request.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyjama_bench::httpbench::{run_http_benchmark, HttpBenchConfig, ServerFlavor};
use pyjama_http::{ClientConn, HttpServer, Request, Response, ServingPolicy};
use pyjama_runtime::Runtime;

const WORKERS: usize = 4;

fn light_config(keepalive: bool) -> HttpBenchConfig {
    HttpBenchConfig {
        users: 8,
        requests_per_user: 50,
        worker_threads: WORKERS,
        omp_parallel_per_event: None,
        payload: 256,
        // Minimal handler work so connection overhead dominates — the
        // quantity this bench isolates.
        work_factor: 1,
        io_ms: 0,
        keepalive,
    }
}

/// The printed report: requests/s and latency percentiles per cell.
fn report_pipeline_throughput() {
    println!("=== http_pipeline — {WORKERS} workers, light handler, loopback ===");
    println!(
        "{:<8} {:<10} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "policy", "keepalive", "req/s", "p50_us", "p99_us", "reused", "pipelined"
    );
    for flavor in [ServerFlavor::Jetty, ServerFlavor::Pyjama] {
        let mut rps = [0.0f64; 2];
        for (i, keepalive) in [false, true].into_iter().enumerate() {
            let r = run_http_benchmark(flavor, &light_config(keepalive));
            assert_eq!(r.failed, 0, "{flavor:?} keepalive={keepalive}");
            rps[i] = r.throughput;
            println!(
                "{:<8} {:<10} {:>12.0} {:>10} {:>10} {:>9} {:>9}",
                flavor.name(),
                keepalive,
                r.throughput,
                r.p50_response.as_micros(),
                r.p99_response.as_micros(),
                r.conns.reused,
                r.conns.pipelined,
            );
        }
        println!(
            "  {} keep-alive speedup: {:.2}x",
            flavor.name(),
            rps[1] / rps[0].max(1e-9)
        );
    }
}

fn echo_server(policy_flavor: ServerFlavor) -> HttpServer {
    let handler = |req: &Request| Response::ok(req.body.clone());
    match policy_flavor {
        ServerFlavor::Jetty => {
            HttpServer::start(ServingPolicy::JettyPool { threads: WORKERS }, handler)
                .expect("start jetty")
        }
        ServerFlavor::Pyjama => {
            let rt = Arc::new(Runtime::new());
            rt.virtual_target_create_worker("worker", WORKERS);
            HttpServer::start(
                ServingPolicy::PyjamaVirtualTarget {
                    runtime: rt,
                    target: "worker".into(),
                },
                handler,
            )
            .expect("start pyjama")
        }
    }
}

fn bench_http_pipeline(c: &mut Criterion) {
    report_pipeline_throughput();

    let mut g = c.benchmark_group("http_pipeline");
    g.sample_size(30);
    for flavor in [ServerFlavor::Jetty, ServerFlavor::Pyjama] {
        // Keep-alive: one persistent connection, request round-trips on it.
        let mut server = echo_server(flavor);
        {
            let mut conn = ClientConn::new(server.addr());
            let mut req = Request::new("POST", "/echo", vec![0xA5; 256]);
            req.headers.insert("connection", "keep-alive");
            g.bench_with_input(
                BenchmarkId::new("keepalive", flavor.name()),
                &flavor,
                |b, _| {
                    b.iter(|| conn.send(&req).expect("keep-alive round-trip"));
                },
            );
        }
        // Baseline: a fresh TCP connection per request.
        {
            let addr = server.addr();
            let req = Request::new("POST", "/echo", vec![0xA5; 256]);
            g.bench_with_input(
                BenchmarkId::new("conn_per_request", flavor.name()),
                &flavor,
                |b, _| {
                    b.iter(|| {
                        let mut conn = ClientConn::new(addr);
                        conn.send(&req).expect("cold round-trip")
                    });
                },
            );
        }
        server.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_http_pipeline
}
criterion_main!(benches);
