//! The PJ builtin functions, shared by both engines.
//!
//! The tree-walking interpreter resolves builtins by name on every call; the
//! bytecode compiler resolves them once, at lowering time, into a [`Builtin`]
//! discriminant baked into a `CallBuiltin` op. Both paths funnel through
//! [`call`], so semantics — including every error message — are identical by
//! construction, which is what the differential suite leans on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pyjama_omp::Ctx;

use crate::ast::BinOp;
use crate::interp::{binary, rt_err, Value};
use crate::CompileError;

/// A builtin resolved at compile (or lookup) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `print(…)` — joins arguments with spaces, captures a line.
    Print,
    /// `str(v)`.
    Str,
    /// `int(v)`.
    Int,
    /// `float(v)`.
    Float,
    /// `arr(…)` — new array from the arguments.
    Arr,
    /// `zeros(n)`.
    Zeros,
    /// `push(a, v)`.
    Push,
    /// `len(a | s)`.
    Len,
    /// `substr(s, a, b)`.
    Substr,
    /// `contains(hay, needle)`.
    Contains,
    /// `replace(s, from, to)`.
    Replace,
    /// `pow(a, b)`.
    Pow,
    /// `floor(v)`.
    Floor,
    /// `sleep_ms(n)`.
    SleepMs,
    /// `busy_ms(n)` — spin for n milliseconds.
    BusyMs,
    /// `now_ms()` — milliseconds since the run started.
    NowMs,
    /// `hash(v)` — FNV-1a of the display form.
    Hash,
    /// `sqrt(v)`.
    Sqrt,
    /// `abs(v)`.
    Abs,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `omp_get_thread_num()`.
    OmpGetThreadNum,
    /// `omp_get_num_threads()`.
    OmpGetNumThreads,
    /// `is_edt()`.
    IsEdt,
    /// `thread_name()`.
    ThreadName,
}

impl Builtin {
    /// Resolves a name (user functions shadow builtins; callers check first).
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "str" => Builtin::Str,
            "int" => Builtin::Int,
            "float" => Builtin::Float,
            "arr" => Builtin::Arr,
            "zeros" => Builtin::Zeros,
            "push" => Builtin::Push,
            "len" => Builtin::Len,
            "substr" => Builtin::Substr,
            "contains" => Builtin::Contains,
            "replace" => Builtin::Replace,
            "pow" => Builtin::Pow,
            "floor" => Builtin::Floor,
            "sleep_ms" => Builtin::SleepMs,
            "busy_ms" => Builtin::BusyMs,
            "now_ms" => Builtin::NowMs,
            "hash" => Builtin::Hash,
            "sqrt" => Builtin::Sqrt,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "omp_get_thread_num" => Builtin::OmpGetThreadNum,
            "omp_get_num_threads" => Builtin::OmpGetNumThreads,
            "is_edt" => Builtin::IsEdt,
            "thread_name" => Builtin::ThreadName,
            _ => return None,
        })
    }

    /// The source-level name (error messages, disassembly).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Str => "str",
            Builtin::Int => "int",
            Builtin::Float => "float",
            Builtin::Arr => "arr",
            Builtin::Zeros => "zeros",
            Builtin::Push => "push",
            Builtin::Len => "len",
            Builtin::Substr => "substr",
            Builtin::Contains => "contains",
            Builtin::Replace => "replace",
            Builtin::Pow => "pow",
            Builtin::Floor => "floor",
            Builtin::SleepMs => "sleep_ms",
            Builtin::BusyMs => "busy_ms",
            Builtin::NowMs => "now_ms",
            Builtin::Hash => "hash",
            Builtin::Sqrt => "sqrt",
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::OmpGetThreadNum => "omp_get_thread_num",
            Builtin::OmpGetNumThreads => "omp_get_num_threads",
            Builtin::IsEdt => "is_edt",
            Builtin::ThreadName => "thread_name",
        }
    }
}

/// What a builtin needs from the executing engine.
pub(crate) struct Host<'a> {
    /// Captured `print` lines.
    pub output: &'a Mutex<Vec<String>>,
    /// The run's start instant (`now_ms`).
    pub epoch: Instant,
}

/// Executes a builtin. Semantics (and error strings) are shared verbatim
/// between the interpreter and the VM.
pub(crate) fn call(
    b: Builtin,
    host: &Host<'_>,
    args: Vec<Value>,
    omp: Option<&Ctx>,
) -> Result<Value, CompileError> {
    let name = b.name();
    let arity = |n: usize| -> Result<(), CompileError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(rt_err(format!(
                "builtin `{name}` expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    match b {
        Builtin::Print => {
            let line = args
                .iter()
                .map(Value::display)
                .collect::<Vec<_>>()
                .join(" ");
            host.output.lock().push(line);
            Ok(Value::Unit)
        }
        Builtin::Str => {
            arity(1)?;
            Ok(Value::Str(args[0].display()))
        }
        Builtin::Int => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Float(v) => Ok(Value::Int(*v as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| rt_err(format!("cannot parse `{s}` as int"))),
                Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
                other => Err(rt_err(format!("cannot convert {} to int", other.type_name()))),
            }
        }
        Builtin::Float => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Float(*v as f64)),
                Value::Float(v) => Ok(Value::Float(*v)),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| rt_err(format!("cannot parse `{s}` as float"))),
                other => Err(rt_err(format!(
                    "cannot convert {} to float",
                    other.type_name()
                ))),
            }
        }
        Builtin::Arr => Ok(Value::Arr(Arc::new(Mutex::new(args)))),
        Builtin::Zeros => {
            arity(1)?;
            let n = args[0].as_int()?;
            let n = usize::try_from(n).map_err(|_| rt_err("zeros: negative length"))?;
            Ok(Value::Arr(Arc::new(Mutex::new(vec![Value::Int(0); n]))))
        }
        Builtin::Push => {
            arity(2)?;
            match &args[0] {
                Value::Arr(a) => {
                    a.lock().push(args[1].clone());
                    Ok(Value::Unit)
                }
                other => Err(rt_err(format!("push: expected array, got {}", other.type_name()))),
            }
        }
        Builtin::Len => {
            arity(1)?;
            match &args[0] {
                Value::Arr(a) => Ok(Value::Int(a.lock().len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                other => Err(rt_err(format!("len: expected array or string, got {}", other.type_name()))),
            }
        }
        Builtin::Substr => {
            arity(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Str(st), Value::Int(a), Value::Int(b)) => {
                    let a = (*a).max(0) as usize;
                    let b = (*b).max(0) as usize;
                    let chars: Vec<char> = st.chars().collect();
                    let a = a.min(chars.len());
                    let b = b.clamp(a, chars.len());
                    Ok(Value::Str(chars[a..b].iter().collect()))
                }
                _ => Err(rt_err("substr(string, start, end)")),
            }
        }
        Builtin::Contains => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Str(hay), Value::Str(needle)) => {
                    Ok(Value::Bool(hay.contains(needle.as_str())))
                }
                _ => Err(rt_err("contains(string, string)")),
            }
        }
        Builtin::Replace => {
            arity(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Str(st), Value::Str(from), Value::Str(to)) => {
                    Ok(Value::Str(st.replace(from.as_str(), to.as_str())))
                }
                _ => Err(rt_err("replace(string, from, to)")),
            }
        }
        Builtin::Pow => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) if *b >= 0 => {
                    Ok(Value::Int(a.wrapping_pow((*b).min(u32::MAX as i64) as u32)))
                }
                (Value::Float(a), Value::Float(b)) => Ok(Value::Float(a.powf(*b))),
                (Value::Float(a), Value::Int(b)) => Ok(Value::Float(a.powi(*b as i32))),
                (Value::Int(a), Value::Float(b)) => Ok(Value::Float((*a as f64).powf(*b))),
                _ => Err(rt_err("pow(number, number)")),
            }
        }
        Builtin::Floor => {
            arity(1)?;
            match &args[0] {
                Value::Float(v) => Ok(Value::Int(v.floor() as i64)),
                Value::Int(v) => Ok(Value::Int(*v)),
                other => Err(rt_err(format!("floor: expected number, got {}", other.type_name()))),
            }
        }
        Builtin::SleepMs => {
            arity(1)?;
            let ms = args[0].as_int()?;
            std::thread::sleep(Duration::from_millis(ms.max(0) as u64));
            Ok(Value::Unit)
        }
        Builtin::BusyMs => {
            arity(1)?;
            let ms = args[0].as_int()?.max(0) as u64;
            let end = Instant::now() + Duration::from_millis(ms);
            let mut x = 0u64;
            while Instant::now() < end {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                std::hint::black_box(x);
            }
            Ok(Value::Unit)
        }
        Builtin::NowMs => {
            arity(0)?;
            Ok(Value::Int(host.epoch.elapsed().as_millis() as i64))
        }
        Builtin::Hash => {
            arity(1)?;
            let s = args[0].display();
            let mut h = 0xcbf29ce484222325u64;
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Ok(Value::Int((h & 0x7FFF_FFFF) as i64))
        }
        Builtin::Sqrt => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Float((*v as f64).sqrt())),
                Value::Float(v) => Ok(Value::Float(v.sqrt())),
                other => Err(rt_err(format!("sqrt: expected number, got {}", other.type_name()))),
            }
        }
        Builtin::Abs => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(rt_err(format!("abs: expected number, got {}", other.type_name()))),
            }
        }
        Builtin::Min | Builtin::Max => {
            arity(2)?;
            let take_first = match binary(BinOp::Le, &args[0], &args[1])? {
                Value::Bool(le) => {
                    if matches!(b, Builtin::Min) {
                        le
                    } else {
                        !le
                    }
                }
                _ => unreachable!(),
            };
            let mut args = args;
            Ok(if take_first {
                args.swap_remove(0)
            } else {
                args.swap_remove(1)
            })
        }
        Builtin::OmpGetThreadNum => {
            arity(0)?;
            Ok(Value::Int(omp.map_or(0, |c| c.thread_num() as i64)))
        }
        Builtin::OmpGetNumThreads => {
            arity(0)?;
            Ok(Value::Int(omp.map_or(1, |c| c.num_threads() as i64)))
        }
        Builtin::IsEdt => {
            arity(0)?;
            Ok(Value::Bool(pyjama_events::pump::is_event_loop_thread()))
        }
        Builtin::ThreadName => {
            arity(0)?;
            Ok(Value::Str(
                std::thread::current().name().unwrap_or("<unnamed>").to_string(),
            ))
        }
    }
}
