//! The PJ lexer.
//!
//! `//#omp <text>` comment lines become [`TokenKind::Directive`] tokens
//! (Pyjama's choice for Java, which lacks pragmas: "compilers that do not
//! support the semantics will safely ignore the directives by regarding
//! them as comments", §III-B). Ordinary `//` comments are skipped.

use crate::CompileError;

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// The kinds of PJ tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (escapes processed).
    Str(String),
    /// An `//#omp …` directive (text after `//#omp`).
    Directive(String),
    /// Punctuation / operator, e.g. `{`, `==`, `+`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier payload, if this is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCTS: &[&str] = &[
    // length-2 first so maximal munch works
    "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=", "{", "}", "(", ")", "[",
    "]", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=", "!", ".",
];

/// Lexes PJ source into tokens (with a trailing [`TokenKind::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments and directives.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let end = source[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
            let comment = &source[i..end];
            if let Some(text) = comment.strip_prefix("//#omp") {
                tokens.push(Token {
                    kind: TokenKind::Directive(text.trim().to_string()),
                    line,
                });
            }
            i = end;
            continue;
        }
        // String literal.
        if c == '"' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(CompileError::Lex {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                match bytes[j] as char {
                    '"' => break,
                    '\\' => {
                        j += 1;
                        let esc = bytes.get(j).copied().unwrap_or(b'"') as char;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            other => {
                                return Err(CompileError::Lex {
                                    line,
                                    message: format!("unknown escape `\\{other}`"),
                                })
                            }
                        });
                        j += 1;
                    }
                    '\n' => {
                        return Err(CompileError::Lex {
                            line,
                            message: "newline in string literal".into(),
                        })
                    }
                    ch => {
                        s.push(ch);
                        j += 1;
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(s),
                line,
            });
            i = j + 1;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            // A float only if `.` is followed by a digit (so `0..n` lexes as
            // int, `..`, int).
            let is_float = i + 1 < bytes.len()
                && bytes[i] == b'.'
                && (bytes[i + 1] as char).is_ascii_digit();
            if is_float {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let v: f64 = text.parse().map_err(|_| CompileError::Lex {
                    line,
                    message: format!("bad float literal `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Float(v),
                    line,
                });
            } else {
                let text = &source[start..i];
                let v: i64 = text.parse().map_err(|_| CompileError::Lex {
                    line,
                    message: format!("bad integer literal `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        // Punctuation (maximal munch).
        let mut matched = false;
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(CompileError::Lex {
                line,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokenKind::Ident("let".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_ranges_distinctly() {
        assert_eq!(
            kinds("1.5 0..10"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Int(0),
                TokenKind::Punct(".."),
                TokenKind::Int(10),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn directive_comments_become_tokens() {
        let ts = kinds("//#omp target virtual(worker) nowait\n{ }");
        assert_eq!(
            ts[0],
            TokenKind::Directive("target virtual(worker) nowait".into())
        );
        assert_eq!(ts[1], TokenKind::Punct("{"));
    }

    #[test]
    fn plain_comments_are_skipped() {
        assert_eq!(kinds("// just a comment\n1"), vec![TokenKind::Int(1), TokenKind::Eof]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(lex("let x = @;").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n  c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn two_char_operators_munch_maximally() {
        assert_eq!(
            kinds("a <= b == c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("=="),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }
}
