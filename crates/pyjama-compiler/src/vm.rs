//! The PJ register VM: a single match-dispatch loop over flat bytecode.
//!
//! One OS-thread entry (the `main` call, each dispatched target block, each
//! team member, each `parallel for` iteration) owns a private register
//! stack (`Vec<Slot>`); call frames are windows into it, and a callee's
//! window *starts at the caller's argument block*, so calls copy nothing.
//! The only shared state is the cells of directive-captured variables
//! (`Arc<Mutex<Value>>`), exactly as in the tree-walking interpreter — the
//! paper's §III-B data-context sharing survives unchanged because the
//! compiler routes every captured name through `CellGet`/`CellSet`/
//! `CapGet`/`CapSet`, never through plain registers.
//!
//! Directive `Dispatch` ops drive the same substrates as the interpreter:
//! `target` bodies go through [`pyjama_runtime::Runtime::try_target`]
//! (member short-circuit, `await` pumping, tag synchronisation all apply),
//! `parallel` / `parallel for` fork [`pyjama_omp`] teams. Per-op and
//! per-frame counts are batched thread-locally and flushed once per entry
//! into a process-wide [`VmCounters`], whose conservation law
//! (`target_dispatches == RunOutput::target_posts`) ties the compiler's
//! view of dispatch to the runtime's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use pyjama_metrics::{VmCounters, VmStats};
use pyjama_omp::{Ctx, Schedule};
use pyjama_runtime::directive::TargetProperty;
use pyjama_runtime::{Mode, Runtime};

use crate::ast::{BinOp, LoopSchedule, Program, UnOp};
use crate::builtins::{self, Host};
use crate::bytecode::{CapSrc, Chunk, Const, DirectiveSpec, Op, Reg};
use crate::interp::{self, binary, rt_err, Cell, ExecConfig, RunOutput, Value};
use crate::CompileError;

/// Process-wide VM counters (ops, frames, dispatches). See
/// [`pyjama_metrics::VmCounters`] for the conservation law.
static COUNTERS: VmCounters = VmCounters::new();

/// Snapshot of the process-wide VM counters.
pub fn vm_stats() -> VmStats {
    COUNTERS.snapshot()
}

/// Zeroes the process-wide VM counters (quiesce running programs first).
pub fn reset_vm_stats() {
    COUNTERS.reset()
}

/// One register slot. Unboxed locals and temporaries hold a [`Value`]
/// directly; directive-captured locals hold the shared cell.
#[derive(Clone, Debug, Default)]
enum Slot {
    #[default]
    Empty,
    V(Value),
    C(Cell),
}

/// Shared run state — the VM's analogue of the interpreter's `Core`.
struct VmCore {
    module: crate::bytecode::Module,
    rt: Arc<Runtime>,
    output: Mutex<Vec<String>>,
    errors: Mutex<Vec<String>>,
    outstanding: AtomicUsize,
    epoch: Instant,
    ignore: bool,
}

#[derive(Default)]
struct LocalCounts {
    ops: u64,
    frames: u64,
}

enum Exit {
    /// Fell past the end of the range.
    Fall,
    /// A jump whose target lies outside the range (break escaping an
    /// inline `critical` region, for instance).
    Jump(u32),
    /// A `Ret`/`RetUnit` unwinding the whole chunk.
    Ret(Value),
}

enum DispatchOut {
    /// Run the inline body copy at `pc + 1` (disabled `if`, orphaned
    /// `single`/`task`/`sections`, `master` on the master thread).
    Inline,
    /// The directive ran (or was dispatched); resume at `skip`.
    Skip,
}

/// Compiles and runs a program on the VM engine.
pub fn run_program(program: &Program, config: &ExecConfig) -> Result<RunOutput, CompileError> {
    let module = crate::compile::compile_program(program);
    let main = module.main.ok_or_else(|| rt_err("no `main` function"))?;
    let params = module.chunks[main].params;
    if params != 0 {
        return Err(rt_err(format!(
            "function `main` expects {params} arguments, got 0"
        )));
    }

    let (rt, edt) = interp::setup_runtime(config)?;
    let core = Arc::new(VmCore {
        module,
        rt: Arc::clone(&rt),
        output: Mutex::new(Vec::new()),
        errors: Mutex::new(Vec::new()),
        outstanding: AtomicUsize::new(0),
        epoch: Instant::now(),
        ignore: config.ignore_directives,
    });

    let result = run_entry(&core, main, Vec::new(), Vec::new(), None)?;

    let target_posts = interp::finish_run(&rt, edt, &core.outstanding, config.quiesce_timeout)?;

    let errors = core.errors.lock().clone();
    if !errors.is_empty() {
        return Err(rt_err(errors.join("; ")));
    }
    let output = core.output.lock().clone();
    Ok(RunOutput {
        output,
        result: result.display(),
        target_posts,
    })
}

/// Runs one chunk on a fresh register stack — the entry point for `main`
/// and for every dispatched closure. Batched counters flush here, once.
fn run_entry(
    core: &Arc<VmCore>,
    chunk: usize,
    caps: Vec<Cell>,
    params: Vec<Value>,
    omp: Option<&Ctx>,
) -> Result<Value, CompileError> {
    let mut counters = LocalCounts::default();
    let mut stack: Vec<Slot> = params.into_iter().map(Slot::V).collect();
    let r = run_chunk(core, &mut stack, 0, chunk, &caps, omp, &mut counters);
    COUNTERS.add_ops(counters.ops);
    COUNTERS.add_frames(counters.frames);
    r
}

#[allow(clippy::too_many_arguments)]
fn run_chunk(
    core: &Arc<VmCore>,
    stack: &mut Vec<Slot>,
    base: usize,
    chunk_idx: usize,
    caps: &[Cell],
    omp: Option<&Ctx>,
    counters: &mut LocalCounts,
) -> Result<Value, CompileError> {
    let chunk = &core.module.chunks[chunk_idx];
    if stack.len() < base + chunk.regs {
        stack.resize(base + chunk.regs, Slot::Empty);
    }
    counters.frames += 1;
    match run_range(
        core,
        stack,
        base,
        chunk,
        caps,
        omp,
        counters,
        0,
        chunk.ops.len() as u32,
    )? {
        Exit::Ret(v) => Ok(v),
        // Chunks end in an appended `RetUnit`; falling off is equivalent.
        Exit::Fall | Exit::Jump(_) => Ok(Value::Unit),
    }
}

fn val<'a>(stack: &'a [Slot], base: usize, r: Reg) -> Result<&'a Value, CompileError> {
    match &stack[base + r as usize] {
        Slot::V(v) => Ok(v),
        _ => Err(rt_err("internal: read of non-value register")),
    }
}

fn take(stack: &mut [Slot], base: usize, r: Reg) -> Result<Value, CompileError> {
    match std::mem::take(&mut stack[base + r as usize]) {
        Slot::V(v) => Ok(v),
        _ => Err(rt_err("internal: take of non-value register")),
    }
}

fn put(stack: &mut [Slot], base: usize, r: Reg, v: Value) {
    stack[base + r as usize] = Slot::V(v);
}

fn load_const(chunk: &Chunk, idx: u16) -> Value {
    match &chunk.consts[idx as usize] {
        Const::Int(v) => Value::Int(*v),
        Const::Float(v) => Value::Float(*v),
        Const::Str(s) => Value::Str(s.clone()),
    }
}

fn const_str(chunk: &Chunk, idx: u16) -> &str {
    match &chunk.consts[idx as usize] {
        Const::Str(s) => s,
        _ => "internal: non-string constant",
    }
}

/// Resolves a closure's capture recipe against the dispatching frame.
fn resolve_caps(
    stack: &[Slot],
    base: usize,
    caps: &[Cell],
    srcs: &[CapSrc],
) -> Result<Vec<Cell>, CompileError> {
    srcs.iter()
        .map(|s| match s {
            CapSrc::Reg(r) => match &stack[base + *r as usize] {
                Slot::C(c) => Ok(Arc::clone(c)),
                _ => Err(rt_err("internal: capture of unboxed register")),
            },
            CapSrc::Cap(i) => Ok(Arc::clone(&caps[*i as usize])),
        })
        .collect()
}

/// Executes ops `[start, end)`. Jumps landing inside `[start, end]` move
/// `pc`; jumps escaping the range (a `break` leaving an inline `critical`
/// region) propagate as [`Exit::Jump`] for the enclosing range to take.
#[allow(clippy::too_many_arguments)]
fn run_range(
    core: &Arc<VmCore>,
    stack: &mut Vec<Slot>,
    base: usize,
    chunk: &Chunk,
    caps: &[Cell],
    omp: Option<&Ctx>,
    counters: &mut LocalCounts,
    start: u32,
    end: u32,
) -> Result<Exit, CompileError> {
    let mut pc = start;
    while pc < end {
        counters.ops += 1;
        let op = chunk.ops[pc as usize];
        pc += 1;
        macro_rules! jump {
            ($t:expr) => {{
                let t: u32 = $t;
                if t < start || t > end {
                    return Ok(Exit::Jump(t));
                }
                pc = t;
                continue;
            }};
        }
        match op {
            Op::LoadConst { dst, idx } => put(stack, base, dst, load_const(chunk, idx)),
            Op::LoadInt { dst, v } => put(stack, base, dst, Value::Int(v as i64)),
            Op::LoadBool { dst, v } => put(stack, base, dst, Value::Bool(v)),
            Op::LoadUnit { dst } => put(stack, base, dst, Value::Unit),
            Op::Move { dst, src } => {
                let v = val(stack, base, src)?.clone();
                put(stack, base, dst, v);
            }
            Op::NewCell { reg } => {
                let slot = &mut stack[base + reg as usize];
                match std::mem::take(slot) {
                    Slot::V(v) => *slot = Slot::C(Arc::new(Mutex::new(v))),
                    _ => return Err(rt_err("internal: boxing a non-value register")),
                }
            }
            Op::CellGet { dst, src } => {
                let v = match &stack[base + src as usize] {
                    Slot::C(c) => c.lock().clone(),
                    _ => return Err(rt_err("internal: cell read of unboxed register")),
                };
                put(stack, base, dst, v);
            }
            Op::CellSet { dst, src } => {
                let v = val(stack, base, src)?.clone();
                match &stack[base + dst as usize] {
                    Slot::C(c) => *c.lock() = v,
                    _ => return Err(rt_err("internal: cell write of unboxed register")),
                }
            }
            Op::CapGet { dst, idx } => {
                let v = caps[idx as usize].lock().clone();
                put(stack, base, dst, v);
            }
            Op::CapSet { idx, src } => {
                let v = val(stack, base, src)?.clone();
                *caps[idx as usize].lock() = v;
            }
            Op::Bin { op, dst, a, b } => {
                let out = match (val(stack, base, a)?, val(stack, base, b)?) {
                    // Int×int inline — the dominant case in compute kernels;
                    // semantics identical to `interp::binary`.
                    (Value::Int(x), Value::Int(y)) => {
                        let (x, y) = (*x, *y);
                        match op {
                            BinOp::Add => Value::Int(x.wrapping_add(y)),
                            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(rt_err("division by zero"));
                                }
                                Value::Int(x / y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(rt_err("remainder by zero"));
                                }
                                Value::Int(x % y)
                            }
                            BinOp::Lt => Value::Bool(x < y),
                            BinOp::Le => Value::Bool(x <= y),
                            BinOp::Gt => Value::Bool(x > y),
                            BinOp::Ge => Value::Bool(x >= y),
                            BinOp::Eq => Value::Bool(x == y),
                            BinOp::Ne => Value::Bool(x != y),
                            _ => binary(op, &Value::Int(x), &Value::Int(y))?,
                        }
                    }
                    (va, vb) => binary(op, va, vb)?,
                };
                put(stack, base, dst, out);
            }
            Op::AddImm { dst, a, imm } => {
                let x = val(stack, base, a)?.as_int()?;
                put(stack, base, dst, Value::Int(x.wrapping_add(imm as i64)));
            }
            Op::BinImm { op, dst, a, imm } => {
                let out = match val(stack, base, a)? {
                    Value::Int(x) => {
                        let (x, y) = (*x, imm as i64);
                        match op {
                            BinOp::Add => Value::Int(x.wrapping_add(y)),
                            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(rt_err("division by zero"));
                                }
                                Value::Int(x / y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(rt_err("remainder by zero"));
                                }
                                Value::Int(x % y)
                            }
                            BinOp::Lt => Value::Bool(x < y),
                            BinOp::Le => Value::Bool(x <= y),
                            BinOp::Gt => Value::Bool(x > y),
                            BinOp::Ge => Value::Bool(x >= y),
                            BinOp::Eq => Value::Bool(x == y),
                            BinOp::Ne => Value::Bool(x != y),
                            _ => binary(op, &Value::Int(x), &Value::Int(y))?,
                        }
                    }
                    v => binary(op, v, &Value::Int(imm as i64))?,
                };
                put(stack, base, dst, out);
            }
            Op::Neg { dst, src } => {
                let out = match val(stack, base, src)? {
                    Value::Int(v) => Value::Int(-*v),
                    Value::Float(v) => Value::Float(-*v),
                    v => {
                        return Err(rt_err(format!(
                            "cannot apply {:?} to {}",
                            UnOp::Neg,
                            v.type_name()
                        )))
                    }
                };
                put(stack, base, dst, out);
            }
            Op::Not { dst, src } => {
                let out = match val(stack, base, src)? {
                    Value::Bool(b) => Value::Bool(!*b),
                    v => {
                        return Err(rt_err(format!(
                            "cannot apply {:?} to {}",
                            UnOp::Not,
                            v.type_name()
                        )))
                    }
                };
                put(stack, base, dst, out);
            }
            Op::Jump { to } => jump!(to),
            Op::JumpIfFalse { cond, to } => {
                if !val(stack, base, cond)?.truthy()? {
                    jump!(to);
                }
            }
            Op::JumpIfTrue { cond, to } => {
                if val(stack, base, cond)?.truthy()? {
                    jump!(to);
                }
            }
            Op::AssertInt { reg } => {
                val(stack, base, reg)?.as_int()?;
            }
            Op::Index { dst, arr, idx } => {
                let i = val(stack, base, idx)?.as_int()?;
                let out = match val(stack, base, arr)? {
                    Value::Arr(a) => {
                        let g = a.lock();
                        usize::try_from(i)
                            .ok()
                            .and_then(|i| g.get(i).cloned())
                            .ok_or_else(|| rt_err(format!("index {i} out of bounds")))?
                    }
                    other => {
                        return Err(rt_err(format!("cannot index a {}", other.type_name())))
                    }
                };
                put(stack, base, dst, out);
            }
            Op::IndexSet { arr, idx, val: v } => {
                let i = val(stack, base, idx)?.as_int()?;
                let value = take(stack, base, v)?;
                match val(stack, base, arr)? {
                    Value::Arr(a) => {
                        let mut g = a.lock();
                        let iu = usize::try_from(i)
                            .ok()
                            .filter(|i| *i < g.len())
                            .ok_or_else(|| rt_err(format!("index {i} out of bounds")))?;
                        g[iu] = value;
                    }
                    other => {
                        return Err(rt_err(format!(
                            "cannot index-assign a {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Op::Call {
                chunk: callee,
                dst,
                base: rel,
                argc: _,
            } => {
                // The callee's frame starts at the argument block — the
                // arguments already are its first registers.
                let callee_base = base + rel as usize;
                let v = run_chunk(core, stack, callee_base, callee as usize, &[], omp, counters)?;
                put(stack, base, dst, v);
            }
            Op::CallBuiltin {
                b,
                dst,
                base: rel,
                argc,
            } => {
                let mut args = Vec::with_capacity(argc as usize);
                for k in 0..argc as u16 {
                    args.push(take(stack, base, rel + k)?);
                }
                let host = Host {
                    output: &core.output,
                    epoch: core.epoch,
                };
                let out = builtins::call(b, &host, args, omp)?;
                put(stack, base, dst, out);
            }
            Op::Ret { src } => {
                let v = take(stack, base, src)?;
                return Ok(Exit::Ret(v));
            }
            Op::RetUnit => return Ok(Exit::Ret(Value::Unit)),
            Op::Fail { msg } => return Err(rt_err(const_str(chunk, msg).to_string())),
            Op::JumpIfIgnoring { to } => {
                if core.ignore {
                    jump!(to);
                }
            }
            Op::WaitTag { tag } => {
                if !core.ignore {
                    core.rt.wait_tag(const_str(chunk, tag));
                }
            }
            Op::Barrier => {
                if !core.ignore {
                    match omp {
                        Some(ctx) => ctx.barrier(),
                        None => {
                            return Err(rt_err("barrier directive outside a parallel region"))
                        }
                    }
                }
            }
            Op::TaskWait => {
                if !core.ignore {
                    if let Some(ctx) = omp {
                        ctx.taskwait();
                    }
                }
            }
            Op::Dispatch { spec, skip } => match &chunk.specs[spec as usize] {
                // `critical` runs the inline range under the named lock —
                // no closure chunk, so `return`/`break` inside it unwind
                // through [`Exit`] with the lock released first.
                DirectiveSpec::Critical { name } => {
                    let key = if name.is_empty() { "<pj-anon>" } else { name };
                    let lock = pyjama_omp::sync::critical_lock(key);
                    let guard = lock.lock();
                    let exit =
                        run_range(core, stack, base, chunk, caps, omp, counters, pc, skip)?;
                    drop(guard);
                    match exit {
                        Exit::Fall => jump!(skip),
                        Exit::Jump(t) => jump!(t),
                        ret @ Exit::Ret(_) => return Ok(ret),
                    }
                }
                other => match dispatch(core, stack, base, caps, omp, other)? {
                    DispatchOut::Inline => {} // fall into the inline copy
                    DispatchOut::Skip => jump!(skip),
                },
            },
        }
    }
    Ok(Exit::Fall)
}

/// Executes a non-`critical` directive spec. Mirrors the interpreter's
/// `exec_directive` arm for arm, including error propagation.
fn dispatch(
    core: &Arc<VmCore>,
    stack: &mut Vec<Slot>,
    base: usize,
    caps: &[Cell],
    omp: Option<&Ctx>,
    spec: &DirectiveSpec,
) -> Result<DispatchOut, CompileError> {
    match spec {
        DirectiveSpec::Target {
            target,
            mode,
            cond,
            body,
        } => {
            let enabled = match cond {
                Some(r) => val(stack, base, *r)?.truthy()?,
                None => true,
            };
            let target_name = match target {
                TargetProperty::Virtual(name) => name.clone(),
                TargetProperty::Default => core
                    .rt
                    .default_target()
                    .ok_or_else(|| rt_err("no default virtual target registered"))?,
                TargetProperty::Device(n) => {
                    let name = format!("device:{n}");
                    if core.rt.has_target(&name) {
                        name
                    } else {
                        "worker".to_string()
                    }
                }
            };
            if !enabled {
                // Disabled directive: execute synchronously in place.
                return Ok(DispatchOut::Inline);
            }
            let cells = resolve_caps(stack, base, caps, &body.caps)?;
            let chunk_idx = body.chunk as usize;
            let core2 = Arc::clone(core);
            let closure = move || {
                if let Err(e) = run_entry(&core2, chunk_idx, cells, Vec::new(), None) {
                    core2.errors.lock().push(e.to_string());
                }
            };
            match mode {
                Mode::NoWait | Mode::NameAs(_) => {
                    // Track in-flight blocks so the run can quiesce.
                    core.outstanding.fetch_add(1, Ordering::SeqCst);
                    let core3 = Arc::clone(core);
                    let tracked = move || {
                        struct Guard(Arc<VmCore>);
                        impl Drop for Guard {
                            fn drop(&mut self) {
                                self.0.outstanding.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _g = Guard(core3);
                        closure();
                    };
                    core.rt
                        .try_target(&target_name, mode.clone(), tracked)
                        .map_err(|e| rt_err(e.to_string()))?;
                }
                Mode::Wait | Mode::Await => {
                    core.rt
                        .try_target(&target_name, mode.clone(), closure)
                        .map_err(|e| rt_err(e.to_string()))?;
                }
            }
            COUNTERS.record_target_dispatch();
            Ok(DispatchOut::Skip)
        }
        DirectiveSpec::Parallel { num_threads, body } => {
            let cells = resolve_caps(stack, base, caps, &body.caps)?;
            let chunk_idx = body.chunk as usize;
            let n = num_threads.unwrap_or_else(pyjama_omp::default_num_threads);
            COUNTERS.record_team_region();
            let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
            pyjama_omp::parallel(n, |ctx| {
                if let Err(e) = run_entry(core, chunk_idx, cells.clone(), Vec::new(), Some(ctx)) {
                    errors.lock().push(e);
                }
            });
            match errors.into_inner().into_iter().next() {
                Some(e) => Err(e),
                None => Ok(DispatchOut::Skip),
            }
        }
        DirectiveSpec::ParallelFor {
            num_threads,
            schedule,
            start,
            end,
            body,
        } => {
            let s = val(stack, base, *start)?.as_int()?;
            let e = val(stack, base, *end)?.as_int()?;
            if e <= s {
                return Ok(DispatchOut::Skip);
            }
            let (s, e) = (s as usize, e as usize);
            let cells = resolve_caps(stack, base, caps, &body.caps)?;
            let chunk_idx = body.chunk as usize;
            let n = num_threads.unwrap_or_else(pyjama_omp::default_num_threads);
            let sched = match schedule {
                LoopSchedule::Static => Schedule::Static { chunk: None },
                LoopSchedule::Dynamic(c) => Schedule::Dynamic { chunk: (*c).max(1) },
                LoopSchedule::Guided(c) => Schedule::Guided {
                    min_chunk: (*c).max(1),
                },
            };
            COUNTERS.record_team_region();
            let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
            pyjama_omp::parallel(n, |ctx| {
                ctx.for_range_nowait(s..e, sched, |i| {
                    if let Err(err) = run_entry(
                        core,
                        chunk_idx,
                        cells.clone(),
                        vec![Value::Int(i as i64)],
                        None,
                    ) {
                        errors.lock().push(err);
                    }
                });
            });
            match errors.into_inner().into_iter().next() {
                Some(e) => Err(e),
                None => Ok(DispatchOut::Skip),
            }
        }
        DirectiveSpec::Single { body } => match omp {
            None => Ok(DispatchOut::Inline),
            Some(ctx) => {
                let cells = resolve_caps(stack, base, caps, &body.caps)?;
                let chunk_idx = body.chunk as usize;
                let result: Mutex<Option<Result<(), CompileError>>> = Mutex::new(None);
                ctx.single(|| {
                    let r = run_entry(core, chunk_idx, cells, Vec::new(), Some(ctx)).map(|_| ());
                    *result.lock() = Some(r);
                });
                match result.into_inner() {
                    Some(Err(e)) => Err(e),
                    _ => Ok(DispatchOut::Skip),
                }
            }
        },
        DirectiveSpec::Task { body } => match omp {
            // "An orphaned task directive will execute sequentially" (§I).
            None => Ok(DispatchOut::Inline),
            Some(ctx) => {
                let cells = resolve_caps(stack, base, caps, &body.caps)?;
                let chunk_idx = body.chunk as usize;
                let core2 = Arc::clone(core);
                ctx.task(move || {
                    if let Err(e) = run_entry(&core2, chunk_idx, cells, Vec::new(), None) {
                        core2.errors.lock().push(e.to_string());
                    }
                });
                Ok(DispatchOut::Skip)
            }
        },
        DirectiveSpec::Sections { sections } => match omp {
            None => Ok(DispatchOut::Inline),
            Some(ctx) => {
                let resolved: Vec<(usize, Vec<Cell>)> = sections
                    .iter()
                    .map(|cr| {
                        Ok((
                            cr.chunk as usize,
                            resolve_caps(stack, base, caps, &cr.caps)?,
                        ))
                    })
                    .collect::<Result<_, CompileError>>()?;
                let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
                {
                    let errors = &errors;
                    let fns: Vec<Box<dyn Fn() + Sync>> = resolved
                        .iter()
                        .map(|(ci, cells)| {
                            Box::new(move || {
                                if let Err(e) =
                                    run_entry(core, *ci, cells.clone(), Vec::new(), None)
                                {
                                    errors.lock().push(e);
                                }
                            }) as Box<dyn Fn() + Sync>
                        })
                        .collect();
                    let refs: Vec<&(dyn Fn() + Sync)> =
                        fns.iter().map(|b| b.as_ref()).collect();
                    ctx.sections(&refs);
                }
                match errors.into_inner().into_iter().next() {
                    Some(e) => Err(e),
                    None => Ok(DispatchOut::Skip),
                }
            }
        },
        DirectiveSpec::Master => match omp {
            Some(ctx) if !ctx.is_master() => Ok(DispatchOut::Skip),
            _ => Ok(DispatchOut::Inline),
        },
        DirectiveSpec::Critical { .. } => unreachable!("critical handled in run_range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Engine, Interpreter};
    use crate::parser::parse;

    fn run_engine(src: &str, engine: Engine) -> RunOutput {
        let program = parse(src).expect("parse");
        Interpreter::new(Arc::new(program))
            .run(&ExecConfig {
                engine,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("run failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn vm_matches_interpreter_on_compute_kernel() {
        let src = r#"
            fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }
            fn main() {
                let acc = 0;
                for i in 0..12 { acc += fib(i); }
                print(acc, fib(15));
                return acc;
            }"#;
        let vm = run_engine(src, Engine::Vm);
        let interp = run_engine(src, Engine::Interp);
        assert_eq!(vm.output, interp.output);
        assert_eq!(vm.result, interp.result);
    }

    #[test]
    fn vm_matches_interpreter_on_directives() {
        let src = r#"fn main() {
            let x = 0;
            //#omp target virtual(worker)
            { x = x + 1; }
            //#omp parallel for num_threads(2)
            for i in 0..8 {
                //#omp critical
                { x = x + 1; }
            }
            print(x);
        }"#;
        let vm = run_engine(src, Engine::Vm);
        let interp = run_engine(src, Engine::Interp);
        assert_eq!(vm.output, interp.output);
    }

    #[test]
    fn vm_counters_grow_and_balance_against_runtime() {
        let before = vm_stats();
        let src = r#"fn main() {
            let x = 0;
            //#omp target virtual(worker)
            { x = 1; }
            //#omp target virtual(worker) nowait
            { x = 2; }
            print(x >= 0);
        }"#;
        let out = run_engine(src, Engine::Vm);
        let delta = vm_stats().since(&before);
        assert!(delta.ops_executed > 0);
        assert!(delta.frames_pushed >= 3, "main + two target closures");
        // Other tests run concurrently in this binary, so only a lower
        // bound holds here; the exact conservation law is asserted in the
        // process-isolated `tests/vm_counters.rs`.
        assert!(delta.target_dispatches >= out.target_posts.min(2));
    }

    #[test]
    fn deep_recursion_overlapping_frames() {
        let src = r#"
            fn down(n, acc) { if n == 0 { return acc; } return down(n - 1, acc + n); }
            fn main() { print(down(200, 0)); }"#;
        let out = run_engine(src, Engine::Vm);
        assert_eq!(out.output, vec!["20100"]);
    }

    #[test]
    fn break_inside_inline_critical_escapes_to_loop_end() {
        // Exercises Exit::Jump propagation out of the locked inline range.
        let src = r#"fn main() {
            let n = 0;
            for i in 0..10 {
                //#omp critical
                { n += 1; if i == 3 { break; } }
            }
            print(n);
        }"#;
        for engine in [Engine::Vm, Engine::Interp] {
            assert_eq!(run_engine(src, engine).output, vec!["4"], "{engine:?}");
        }
    }

    #[test]
    fn return_inside_inline_critical_unwinds_function() {
        let src = r#"
            fn pick(n) {
                //#omp critical(pick)
                { if n > 2 { return "big"; } }
                return "small";
            }
            fn main() { print(pick(5), pick(1)); }"#;
        for engine in [Engine::Vm, Engine::Interp] {
            assert_eq!(
                run_engine(src, engine).output,
                vec!["big small"],
                "{engine:?}"
            );
        }
    }
}
