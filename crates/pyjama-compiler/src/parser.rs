//! Recursive-descent parser for PJ.

use pyjama_runtime::directive::TargetDirective;

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use crate::CompileError;

/// Parses PJ source into a [`Program`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn line(&self) -> usize {
        self.peek().line
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match &self.peek().kind {
            TokenKind::Punct(q) if *q == p => {
                self.advance();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), CompileError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => self.err(format!("expected keyword `{kw}`, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ------------------------------------------------------------ program

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut functions = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<Function, CompileError> {
        let line = self.line();
        self.eat_keyword("fn")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.at_punct(",") {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(Block { stmts })
    }

    // ------------------------------------------------------------- stmts

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokenKind::Directive(text) => {
                self.advance();
                self.directive_stmt(&text, line)
            }
            TokenKind::Punct("{") => Ok(Stmt::Block(self.block()?)),
            TokenKind::Ident(kw) if kw == "let" => {
                self.advance();
                let name = self.ident()?;
                self.eat_punct("=")?;
                let value = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Let { name, value, line })
            }
            TokenKind::Ident(kw) if kw == "if" => self.if_stmt(),
            TokenKind::Ident(kw) if kw == "while" => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Ident(kw) if kw == "for" => self.for_stmt(),
            TokenKind::Ident(kw) if kw == "break" => {
                self.advance();
                self.eat_punct(";")?;
                Ok(Stmt::Break)
            }
            TokenKind::Ident(kw) if kw == "continue" => {
                self.advance();
                self.eat_punct(";")?;
                Ok(Stmt::Continue)
            }
            TokenKind::Ident(kw) if kw == "return" => {
                self.advance();
                if self.at_punct(";") {
                    self.advance();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            _ => self.expr_or_assign_stmt(line),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.eat_keyword("if")?;
        let cond = self.expr()?;
        let then_block = self.block()?;
        let else_block = if self.at_keyword("else") {
            self.advance();
            if self.at_keyword("if") {
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.eat_keyword("for")?;
        let var = self.ident()?;
        self.eat_keyword("in")?;
        let start = self.expr()?;
        self.eat_punct("..")?;
        let end = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            start,
            end,
            body,
        })
    }

    fn expr_or_assign_stmt(&mut self, line: usize) -> Result<Stmt, CompileError> {
        let e = self.expr()?;
        // Assignment forms.
        if self.at_punct("=") {
            self.advance();
            let value = self.expr()?;
            self.eat_punct(";")?;
            return match e {
                Expr::Var(name) => Ok(Stmt::Assign { name, value, line }),
                Expr::Index { array, index } => match *array {
                    Expr::Var(name) => Ok(Stmt::IndexAssign {
                        name,
                        index: *index,
                        value,
                        line,
                    }),
                    _ => self.err("can only index-assign a variable"),
                },
                _ => self.err("invalid assignment target"),
            };
        }
        for (punct, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
        ] {
            if self.at_punct(punct) {
                self.advance();
                let rhs = self.expr()?;
                self.eat_punct(";")?;
                return match e {
                    Expr::Var(name) => Ok(Stmt::Assign {
                        name: name.clone(),
                        value: Expr::Binary {
                            op,
                            lhs: Box::new(Expr::Var(name)),
                            rhs: Box::new(rhs),
                        },
                        line,
                    }),
                    _ => self.err("compound assignment target must be a variable"),
                };
            }
        }
        self.eat_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // -------------------------------------------------------- directives

    fn directive_stmt(&mut self, text: &str, line: usize) -> Result<Stmt, CompileError> {
        // The directive head is its leading word: `wait(tag)` → `wait`.
        let first = text
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("");
        let dir_err = |message: String| CompileError::Directive { line, message };

        let directive = match first {
            "target" => {
                let d = TargetDirective::parse(text).map_err(|e| dir_err(e.to_string()))?;
                let if_cond = match &d.if_condition {
                    Some(cond_text) => Some(parse_expr_text(cond_text, line)?),
                    None => None,
                };
                Directive::Target {
                    directive: d,
                    if_cond,
                }
            }
            "wait" => {
                let tag = extract_arg(text, "wait").ok_or_else(|| {
                    dir_err("wait directive needs a tag: wait(tag)".to_string())
                })?;
                Directive::WaitTag(tag)
            }
            "barrier" => Directive::Barrier,
            "master" => Directive::Master,
            "single" => Directive::Single,
            "task" => Directive::Task,
            "taskwait" => Directive::TaskWait,
            "sections" => Directive::Sections,
            "critical" => {
                let name = extract_arg(text, "critical").unwrap_or_default();
                Directive::Critical(name)
            }
            "parallel" => {
                let rest = text["parallel".len()..].trim_start();
                if let Some(after_for) = rest.strip_prefix("for") {
                    let clauses = after_for.trim();
                    Directive::ParallelFor {
                        num_threads: parse_num_threads(clauses, line)?,
                        schedule: parse_schedule(clauses, line)?,
                    }
                } else {
                    Directive::Parallel {
                        num_threads: parse_num_threads(rest, line)?,
                    }
                }
            }
            other => return Err(dir_err(format!("unknown directive `{other}`"))),
        };

        // Standalone directives take no body.
        let body = match directive {
            Directive::WaitTag(_) | Directive::Barrier | Directive::TaskWait => Block::default(),
            Directive::ParallelFor { .. } => {
                // Must annotate a for-loop.
                let stmt = self.for_stmt()?;
                Block { stmts: vec![stmt] }
            }
            _ => {
                if self.at_punct("{") {
                    self.block()?
                } else {
                    // A directive may annotate a single statement.
                    Block {
                        stmts: vec![self.stmt()?],
                    }
                }
            }
        };
        Ok(Stmt::Directive {
            directive,
            body,
            line,
        })
    }

    // ------------------------------------------------------------- exprs

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.at_punct("||") {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        while self.at_punct("&&") {
            self.advance();
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = if self.at_punct("==") {
                BinOp::Eq
            } else if self.at_punct("!=") {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            self.advance();
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn comparison(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.at_punct("<=") {
                BinOp::Le
            } else if self.at_punct(">=") {
                BinOp::Ge
            } else if self.at_punct("<") {
                BinOp::Lt
            } else if self.at_punct(">") {
                BinOp::Gt
            } else {
                return Ok(lhs);
            };
            self.advance();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.at_punct("+") {
                BinOp::Add
            } else if self.at_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.at_punct("*") {
                BinOp::Mul
            } else if self.at_punct("/") {
                BinOp::Div
            } else if self.at_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.at_punct("-") {
            self.advance();
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.at_punct("!") {
            self.advance();
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            if self.at_punct("[") {
                self.advance();
                let index = self.expr()?;
                self.eat_punct("]")?;
                e = Expr::Index {
                    array: Box::new(e),
                    index: Box::new(index),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Float(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::Ident(s) if s == "true" => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.at_punct("(") {
                    self.advance();
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(",") {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parses a standalone expression (used for `if(expr)` clause text).
fn parse_expr_text(text: &str, line: usize) -> Result<Expr, CompileError> {
    let tokens = lex(text).map_err(|e| CompileError::Directive {
        line,
        message: format!("bad if-clause expression `{text}`: {e}"),
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    match p.peek().kind {
        TokenKind::Eof => Ok(e),
        _ => Err(CompileError::Directive {
            line,
            message: format!("trailing tokens in if-clause `{text}`"),
        }),
    }
}

/// Extracts `arg` from `head(arg)` anywhere in clause text.
fn extract_arg(text: &str, head: &str) -> Option<String> {
    let idx = text.find(head)?;
    let rest = text[idx + head.len()..].trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let arg = inner[..close].trim();
    if arg.is_empty() {
        None
    } else {
        Some(arg.to_string())
    }
}

fn parse_num_threads(clauses: &str, line: usize) -> Result<Option<usize>, CompileError> {
    match extract_arg(clauses, "num_threads") {
        Some(a) => a.parse::<usize>().map(Some).map_err(|_| CompileError::Directive {
            line,
            message: format!("bad num_threads argument `{a}`"),
        }),
        None => Ok(None),
    }
}

fn parse_schedule(clauses: &str, line: usize) -> Result<LoopSchedule, CompileError> {
    let Some(arg) = extract_arg(clauses, "schedule") else {
        return Ok(LoopSchedule::Static);
    };
    let mut parts = arg.split(',').map(str::trim);
    let kind = parts.next().unwrap_or("");
    let chunk: Option<usize> = match parts.next() {
        Some(c) => Some(c.parse().map_err(|_| CompileError::Directive {
            line,
            message: format!("bad schedule chunk `{c}`"),
        })?),
        None => None,
    };
    match kind {
        "static" => Ok(LoopSchedule::Static),
        "dynamic" => Ok(LoopSchedule::Dynamic(chunk.unwrap_or(1))),
        "guided" => Ok(LoopSchedule::Guided(chunk.unwrap_or(1))),
        other => Err(CompileError::Directive {
            line,
            message: format!("unknown schedule `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyjama_runtime::Mode;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_minimal_main() {
        let p = parse_ok("fn main() { let x = 1; }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].body.stmts.len(), 1);
    }

    #[test]
    fn parses_params_and_calls() {
        let p = parse_ok("fn add(a, b) { return a + b; } fn main() { let s = add(1, 2); }");
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        match &p.functions[1].body.stmts[0] {
            Stmt::Let { value: Expr::Call { name, args, .. }, .. } => {
                assert_eq!(name, "add");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_target_directive_block() {
        let p = parse_ok(
            "fn main() {\n //#omp target virtual(worker) nowait\n { let x = 1; } }",
        );
        match &p.functions[0].body.stmts[0] {
            Stmt::Directive {
                directive: Directive::Target { directive: d, .. },
                body,
                ..
            } => {
                assert_eq!(d.mode, Mode::NoWait);
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directive_annotates_single_statement() {
        let p = parse_ok("fn main() { //#omp target virtual(edt)\n show(1); }");
        match &p.functions[0].body.stmts[0] {
            Stmt::Directive { body, .. } => assert_eq!(body.stmts.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_with_num_threads() {
        let p = parse_ok("fn main() { //#omp parallel num_threads(3)\n { work(); } }");
        match &p.functions[0].body.stmts[0] {
            Stmt::Directive {
                directive: Directive::Parallel { num_threads },
                ..
            } => assert_eq!(*num_threads, Some(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_for_with_schedule() {
        let p = parse_ok(
            "fn main() { //#omp parallel for num_threads(2) schedule(dynamic, 4)\n for i in 0..10 { work(i); } }",
        );
        match &p.functions[0].body.stmts[0] {
            Stmt::Directive {
                directive:
                    Directive::ParallelFor {
                        num_threads,
                        schedule,
                    },
                body,
                ..
            } => {
                assert_eq!(*num_threads, Some(2));
                assert_eq!(*schedule, LoopSchedule::Dynamic(4));
                assert!(matches!(body.stmts[0], Stmt::For { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_wait_and_barrier_standalone() {
        let p = parse_ok("fn main() { //#omp wait(jobs)\n //#omp barrier\n let x = 1; }");
        assert!(matches!(
            &p.functions[0].body.stmts[0],
            Stmt::Directive {
                directive: Directive::WaitTag(t),
                ..
            } if t == "jobs"
        ));
        assert!(matches!(
            &p.functions[0].body.stmts[1],
            Stmt::Directive {
                directive: Directive::Barrier,
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_chain_and_loops() {
        let src = r#"
fn main() {
    let x = 0;
    if x < 1 { x = 1; } else if x < 2 { x = 2; } else { x = 3; }
    while x > 0 { x -= 1; }
    for i in 0..10 { x += i; }
}
"#;
        let p = parse_ok(src);
        assert_eq!(p.functions[0].body.stmts.len(), 4);
    }

    #[test]
    fn parses_index_read_and_assign() {
        let p = parse_ok("fn main() { let a = arr(); a[0] = 5; let v = a[0]; }");
        assert!(matches!(&p.functions[0].body.stmts[1], Stmt::IndexAssign { .. }));
    }

    #[test]
    fn operator_precedence() {
        let p = parse_ok("fn main() { let x = 1 + 2 * 3; }");
        match &p.functions[0].body.stmts[0] {
            Stmt::Let {
                value: Expr::Binary { op: BinOp::Add, rhs, .. },
                ..
            } => assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = parse("fn main() { //#omp frobnicate\n { } }").unwrap_err();
        assert!(matches!(e, CompileError::Directive { .. }), "{e}");
    }

    #[test]
    fn rejects_bad_target_clause() {
        let e = parse("fn main() { //#omp target virtual()\n { } }").unwrap_err();
        assert!(matches!(e, CompileError::Directive { .. }), "{e}");
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("fn main() { let x = 1;").is_err());
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("fn main() { 1 = 2; }").is_err());
    }

    #[test]
    fn parallel_for_requires_for_loop() {
        assert!(parse("fn main() { //#omp parallel for\n { } }").is_err());
    }
}
