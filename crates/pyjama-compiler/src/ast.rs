//! The PJ abstract syntax tree.

use pyjama_runtime::directive::TargetDirective;

/// A complete PJ program: a set of functions; `main` is the entry point.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// All functions by declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (dynamically typed).
    pub params: Vec<String>,
    /// Body block.
    pub body: Block,
    /// Declaration line.
    pub line: usize,
}

/// A `{ … }` statement sequence.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `name = expr;` or compound (`+=` desugared by the parser).
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `set(a, i, v)`-style index assignment: `name[idx] = value;`
    IndexAssign {
        /// Array variable.
        name: String,
        /// Index expression.
        index: Expr,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// An expression for its side effects.
    Expr(Expr),
    /// `if cond { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_block: Block,
        /// Optional else-branch.
        else_block: Option<Block>,
    },
    /// `while cond { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for i in a..b { … }`
    For {
        /// Loop variable.
        var: String,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Body.
        body: Block,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `break;` (innermost loop)
    Break,
    /// `continue;` (innermost loop)
    Continue,
    /// A nested plain block.
    Block(Block),
    /// A directive applied to a block (or, for `parallel for`, a for-loop).
    Directive {
        /// Which directive.
        directive: Directive,
        /// The annotated statement(s).
        body: Block,
        /// Source line of the directive.
        line: usize,
    },
}

/// The directives PJ understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Directive {
    /// `target …` (Figure 5 grammar, parsed by the runtime crate). The
    /// `if(expr)` clause text, if present, is parsed into a PJ expression
    /// so the interpreter can evaluate it in the enclosing data context.
    Target {
        /// The parsed directive.
        directive: TargetDirective,
        /// Parsed `if` condition.
        if_cond: Option<Expr>,
    },
    /// Standalone `wait(tag)` synchronisation.
    WaitTag(String),
    /// `parallel [num_threads(n)]`.
    Parallel {
        /// Team size (default: machine parallelism).
        num_threads: Option<usize>,
    },
    /// `parallel for [num_threads(n)] [schedule(kind[,chunk])]` on a for-loop.
    ParallelFor {
        /// Team size.
        num_threads: Option<usize>,
        /// Loop schedule.
        schedule: LoopSchedule,
    },
    /// `critical [(name)]`.
    Critical(String),
    /// `barrier` (inside `parallel`).
    Barrier,
    /// `master` (inside `parallel`).
    Master,
    /// `single` (inside `parallel`).
    Single,
    /// `task`: asynchronous within a parallel region; **sequential when
    /// orphaned** — the §I limitation that motivates virtual targets.
    Task,
    /// `taskwait`.
    TaskWait,
    /// `sections`: each top-level statement of the body is one section.
    Sections,
}

/// Loop schedules expressible in PJ directives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(Default)]
pub enum LoopSchedule {
    /// `schedule(static)`.
    #[default]
    Static,
    /// `schedule(dynamic[,chunk])`.
    Dynamic(usize),
    /// `schedule(guided[,min])`.
    Guided(usize),
}


/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Bool literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array index read: `a[i]`.
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator (`-` or `!`).
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line (for error messages).
        line: usize,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_function_lookup() {
        let p = Program {
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body: Block::default(),
                line: 1,
            }],
        };
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
    }

    #[test]
    fn default_schedule_is_static() {
        assert_eq!(LoopSchedule::default(), LoopSchedule::Static);
    }
}
