//! The PJ interpreter: executes programs on the real Pyjama substrates.
//!
//! Target directives dispatch through [`pyjama_runtime::Runtime`] (so all
//! of Algorithm 1 applies — member short-circuit, `await` pumping, tag
//! synchronisation), and `parallel` / `parallel for` directives run on
//! [`pyjama_omp`] teams.
//!
//! Every PJ variable is a shared cell (`Arc<Mutex<Value>>`); capturing an
//! environment for a target block shares the cells rather than copying
//! values — the paper's *data-context sharing*: "all the operations inside
//! a target block share the intuitive data context as if the target
//! directive does not exist" (§III-B).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pyjama_events::Edt;
use pyjama_omp::{Ctx, Schedule};
use pyjama_runtime::directive::TargetProperty;
use pyjama_runtime::{Mode, Runtime};

use crate::ast::*;
use crate::CompileError;

/// A PJ runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The unit value (statements, void returns).
    Unit,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Shared, mutable array (reference semantics, like Java).
    Arr(Arc<Mutex<Vec<Value>>>),
}

impl Value {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
        }
    }

    pub(crate) fn truthy(&self) -> Result<bool, CompileError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(rt_err(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn as_int(&self) -> Result<i64, CompileError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(rt_err(format!("expected int, found {}", other.type_name()))),
        }
    }

    /// Display form (used by `print` and `str`).
    pub fn display(&self) -> String {
        match self {
            Value::Unit => "unit".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
            Value::Arr(a) => {
                let items: Vec<String> = a.lock().iter().map(Value::display).collect();
                format!("[{}]", items.join(", "))
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Arr(a), Value::Arr(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

pub(crate) fn rt_err(msg: impl Into<String>) -> CompileError {
    CompileError::Runtime(msg.into())
}

/// Control flow of statement execution.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

pub(crate) type Cell = Arc<Mutex<Value>>;

/// A lexical environment: a stack of shared scopes. Cloning shares every
/// cell — the capture semantics target blocks rely on.
#[derive(Clone, Default)]
struct Env {
    scopes: Vec<Arc<Mutex<HashMap<String, Cell>>>>,
}

impl Env {
    fn new() -> Self {
        Env {
            scopes: vec![Arc::new(Mutex::new(HashMap::new()))],
        }
    }

    fn push(&self) -> Env {
        let mut e = self.clone();
        e.scopes.push(Arc::new(Mutex::new(HashMap::new())));
        e
    }

    fn declare(&self, name: &str, v: Value) {
        self.scopes
            .last()
            .expect("at least one scope")
            .lock()
            .insert(name.to_string(), Arc::new(Mutex::new(v)));
    }

    fn cell(&self, name: &str) -> Option<Cell> {
        for scope in self.scopes.iter().rev() {
            if let Some(c) = scope.lock().get(name) {
                return Some(Arc::clone(c));
            }
        }
        None
    }

    fn get(&self, name: &str) -> Result<Value, CompileError> {
        self.cell(name)
            .map(|c| c.lock().clone())
            .ok_or_else(|| rt_err(format!("undefined variable `{name}`")))
    }

    fn set(&self, name: &str, v: Value) -> Result<(), CompileError> {
        match self.cell(name) {
            Some(c) => {
                *c.lock() = v;
                Ok(())
            }
            None => Err(rt_err(format!("assignment to undefined variable `{name}`"))),
        }
    }

    /// Applies `f` to the variable's value **without cloning it** — the
    /// hot-path read used by conditions and integer contexts. The cell lock
    /// is held only for the duration of `f`, which must not evaluate
    /// further PJ expressions (`x + x` would self-deadlock otherwise).
    fn with<R>(
        &self,
        name: &str,
        f: impl FnOnce(&Value) -> Result<R, CompileError>,
    ) -> Result<R, CompileError> {
        match self.cell(name) {
            Some(c) => f(&c.lock()),
            None => Err(rt_err(format!("undefined variable `{name}`"))),
        }
    }
}

/// Which execution engine runs the program.
///
/// The register bytecode VM is the default; the tree-walking interpreter is
/// retained as the differential-testing oracle (`tests/pj_differential.rs`
/// runs every program through both and asserts identical output).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The original tree-walking interpreter (oracle).
    Interp,
    /// The register bytecode VM ([`crate::compile`] + [`crate::vm`]).
    #[default]
    Vm,
}

/// Configuration for one program run.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Which engine executes the program.
    pub engine: Engine,
    /// Treat directives as comments (sequential-equivalence mode).
    pub ignore_directives: bool,
    /// Threads in the default `worker` virtual target.
    pub worker_threads: usize,
    /// Spawn an EDT registered as virtual target `edt`.
    pub with_edt: bool,
    /// Additional worker targets: (name, threads).
    pub extra_workers: Vec<(String, usize)>,
    /// Simulated accelerators to register: device numbers. A program's
    /// `target device(n)` dispatches to `device:n` when registered, else
    /// falls back to the host `worker` pool.
    pub devices: Vec<u32>,
    /// Upper bound on waiting for outstanding `nowait` blocks at exit.
    pub quiesce_timeout: Duration,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            engine: Engine::default(),
            ignore_directives: false,
            worker_threads: 4,
            with_edt: true,
            extra_workers: Vec::new(),
            devices: Vec::new(),
            quiesce_timeout: Duration::from_secs(30),
        }
    }
}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Lines captured from `print`.
    pub output: Vec<String>,
    /// The value returned by `main` (unit if none).
    pub result: String,
    /// Target-block dispatches observed by the run's `Runtime` (posted +
    /// inline short-circuits, summed over every virtual target). The
    /// VM-counter conservation law checks against this.
    pub target_posts: u64,
}

struct Core {
    program: Arc<Program>,
    rt: Arc<Runtime>,
    output: Mutex<Vec<String>>,
    errors: Mutex<Vec<String>>,
    outstanding: AtomicUsize,
    epoch: Instant,
    ignore_directives: bool,
}

/// The PJ interpreter.
pub struct Interpreter {
    program: Arc<Program>,
}

impl Interpreter {
    /// Wraps a parsed program.
    pub fn new(program: Arc<Program>) -> Self {
        Interpreter { program }
    }

    /// Runs `main` under `config`, returning captured output.
    pub fn run(&self, config: &ExecConfig) -> Result<RunOutput, CompileError> {
        match config.engine {
            Engine::Vm => crate::vm::run_program(&self.program, config),
            Engine::Interp => self.run_interp(config),
        }
    }

    fn run_interp(&self, config: &ExecConfig) -> Result<RunOutput, CompileError> {
        let (rt, edt) = setup_runtime(config)?;

        let core = Arc::new(Core {
            program: Arc::clone(&self.program),
            rt: Arc::clone(&rt),
            output: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(0),
            epoch: Instant::now(),
            ignore_directives: config.ignore_directives,
        });

        let main = self
            .program
            .function("main")
            .ok_or_else(|| rt_err("no `main` function"))?;
        let result = call_function(&core, main, Vec::new(), None)?;

        let target_posts = finish_run(&rt, edt, &core.outstanding, config.quiesce_timeout)?;

        let errors = core.errors.lock().clone();
        if !errors.is_empty() {
            return Err(rt_err(errors.join("; ")));
        }
        let output = core.output.lock().clone();
        Ok(RunOutput {
            output,
            result: result.display(),
            target_posts,
        })
    }
}

/// Builds the virtual-target substrate both engines run on: the default
/// `worker` pool, extra named pools, simulated devices, and the EDT.
pub(crate) fn setup_runtime(
    config: &ExecConfig,
) -> Result<(Arc<Runtime>, Option<Edt>), CompileError> {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", config.worker_threads.max(1));
    for (name, m) in &config.extra_workers {
        rt.virtual_target_create_worker(name.clone(), (*m).max(1));
    }
    for &n in &config.devices {
        let device = pyjama_runtime::SimulatedDevice::new(n, Duration::ZERO);
        let target = pyjama_runtime::DeviceTarget::new(device);
        rt.register(
            format!("device:{n}"),
            target as Arc<dyn pyjama_runtime::VirtualTarget>,
        )
        .map_err(|e| rt_err(e.to_string()))?;
    }
    let edt = if config.with_edt {
        let edt = Edt::spawn("pj-edt");
        rt.virtual_target_register_edt("edt", edt.handle())
            .map_err(|e| rt_err(e.to_string()))?;
        Some(edt)
    } else {
        None
    };
    Ok((rt, edt))
}

/// Quiesces `nowait` blocks, shuts the EDT down, and tears the runtime
/// down. Returns the total target dispatches (posted + inline) the run's
/// `Runtime` observed — collected *before* `clear()` drops the targets.
pub(crate) fn finish_run(
    rt: &Arc<Runtime>,
    edt: Option<Edt>,
    outstanding: &AtomicUsize,
    quiesce_timeout: Duration,
) -> Result<u64, CompileError> {
    // Quiesce: nowait blocks may still be in flight.
    let deadline = Instant::now() + quiesce_timeout;
    while outstanding.load(Ordering::SeqCst) > 0 {
        if Instant::now() >= deadline {
            return Err(rt_err("timed out waiting for outstanding target blocks"));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if let Some(mut edt) = edt {
        edt.shutdown();
    }
    let target_posts = rt
        .target_names()
        .iter()
        .filter_map(|n| rt.lookup(n).ok())
        .map(|t| {
            let s = t.stats();
            s.posted + s.inline
        })
        .sum();
    rt.clear();
    Ok(target_posts)
}

fn call_function(
    core: &Arc<Core>,
    f: &Function,
    args: Vec<Value>,
    omp: Option<&Ctx>,
) -> Result<Value, CompileError> {
    if args.len() != f.params.len() {
        return Err(rt_err(format!(
            "function `{}` expects {} arguments, got {}",
            f.name,
            f.params.len(),
            args.len()
        )));
    }
    let env = Env::new();
    for (p, a) in f.params.iter().zip(args) {
        env.declare(p, a);
    }
    match exec_block(core, &f.body, &env, omp)? {
        Flow::Return(v) => Ok(v),
        Flow::Normal => Ok(Value::Unit),
        Flow::Break | Flow::Continue => Err(rt_err(format!(
            "break/continue outside a loop in function `{}`",
            f.name
        ))),
    }
}

fn exec_block(
    core: &Arc<Core>,
    block: &Block,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<Flow, CompileError> {
    let env = env.push();
    for stmt in &block.stmts {
        match exec_stmt(core, stmt, &env, omp)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt(
    core: &Arc<Core>,
    stmt: &Stmt,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<Flow, CompileError> {
    match stmt {
        Stmt::Let { name, value, .. } => {
            let v = eval(core, value, env, omp)?;
            env.declare(name, v);
            Ok(Flow::Normal)
        }
        Stmt::Assign { name, value, .. } => {
            let v = eval(core, value, env, omp)?;
            env.set(name, v)?;
            Ok(Flow::Normal)
        }
        Stmt::IndexAssign {
            name,
            index,
            value,
            ..
        } => {
            let idx = eval_int(core, index, env, omp)?;
            let v = eval(core, value, env, omp)?;
            match env.get(name)? {
                Value::Arr(a) => {
                    let mut g = a.lock();
                    let i = usize::try_from(idx)
                        .ok()
                        .filter(|i| *i < g.len())
                        .ok_or_else(|| rt_err(format!("index {idx} out of bounds")))?;
                    g[i] = v;
                    Ok(Flow::Normal)
                }
                other => Err(rt_err(format!(
                    "cannot index-assign a {}",
                    other.type_name()
                ))),
            }
        }
        Stmt::Expr(e) => {
            eval(core, e, env, omp)?;
            Ok(Flow::Normal)
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            if eval_truthy(core, cond, env, omp)? {
                exec_block(core, then_block, env, omp)
            } else if let Some(eb) = else_block {
                exec_block(core, eb, env, omp)
            } else {
                Ok(Flow::Normal)
            }
        }
        Stmt::While { cond, body } => {
            while eval_truthy(core, cond, env, omp)? {
                match exec_block(core, body, env, omp)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            let s = eval_int(core, start, env, omp)?;
            let e = eval_int(core, end, env, omp)?;
            for i in s..e {
                let iter_env = env.push();
                iter_env.declare(var, Value::Int(i));
                match exec_block(core, body, &iter_env, omp)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Break => Ok(Flow::Break),
        Stmt::Continue => Ok(Flow::Continue),
        Stmt::Return(e) => {
            let v = match e {
                Some(e) => eval(core, e, env, omp)?,
                None => Value::Unit,
            };
            Ok(Flow::Return(v))
        }
        Stmt::Block(b) => exec_block(core, b, env, omp),
        Stmt::Directive {
            directive, body, ..
        } => exec_directive(core, directive, body, env, omp),
    }
}

fn exec_directive(
    core: &Arc<Core>,
    directive: &Directive,
    body: &Block,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<Flow, CompileError> {
    // Sequential-equivalence mode: "when the directives are disabled or
    // ignored by unsupported compilers, the code still retains its
    // correctness when executed sequentially" (§III).
    if core.ignore_directives {
        return exec_block(core, body, env, omp);
    }

    match directive {
        Directive::Target { directive: d, if_cond } => {
            // Honour wait(tag) clauses attached to the directive first.
            for tag in &d.wait_tags {
                core.rt.wait_tag(tag);
            }
            let enabled = match if_cond {
                Some(cond) => eval_truthy(core, cond, env, omp)?,
                None => true,
            };
            let target_name = match &d.target {
                TargetProperty::Virtual(name) => name.clone(),
                TargetProperty::Default => core
                    .rt
                    .default_target()
                    .ok_or_else(|| rt_err("no default virtual target registered"))?,
                // Dispatch to a registered simulated accelerator, else
                // fall back to the host pool (documented substitution).
                TargetProperty::Device(n) => {
                    let name = format!("device:{n}");
                    if core.rt.has_target(&name) {
                        name
                    } else {
                        "worker".to_string()
                    }
                }
            };
            if !enabled {
                // Disabled directive: execute synchronously in place.
                return exec_block(core, body, env, omp);
            }

            let closure = {
                let core = Arc::clone(core);
                let body = body.clone();
                let env = env.clone();
                move || {
                    if let Err(e) = exec_block(&core, &body, &env, None) {
                        core.errors.lock().push(e.to_string());
                    }
                }
            };
            let mode = d.mode.clone();
            match &mode {
                Mode::NoWait | Mode::NameAs(_) => {
                    // Track in-flight blocks so `run` can quiesce.
                    core.outstanding.fetch_add(1, Ordering::SeqCst);
                    let core2 = Arc::clone(core);
                    let tracked = move || {
                        struct Guard(Arc<Core>);
                        impl Drop for Guard {
                            fn drop(&mut self) {
                                self.0.outstanding.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _g = Guard(core2);
                        closure();
                    };
                    core.rt
                        .try_target(&target_name, mode, tracked)
                        .map_err(|e| rt_err(e.to_string()))?;
                }
                Mode::Wait | Mode::Await => {
                    core.rt
                        .try_target(&target_name, mode, closure)
                        .map_err(|e| rt_err(e.to_string()))?;
                }
            }
            Ok(Flow::Normal)
        }
        Directive::WaitTag(tag) => {
            core.rt.wait_tag(tag);
            Ok(Flow::Normal)
        }
        Directive::Parallel { num_threads } => {
            let n = num_threads.unwrap_or_else(pyjama_omp::default_num_threads);
            let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
            pyjama_omp::parallel(n, |ctx| {
                let member_env = env.push();
                if let Err(e) = exec_block(core, body, &member_env, Some(ctx)) {
                    errors.lock().push(e);
                }
            });
            match errors.into_inner().into_iter().next() {
                Some(e) => Err(e),
                None => Ok(Flow::Normal),
            }
        }
        Directive::ParallelFor {
            num_threads,
            schedule,
        } => {
            let Some(Stmt::For {
                var,
                start,
                end,
                body: loop_body,
            }) = body.stmts.first()
            else {
                return Err(rt_err("parallel for must annotate a for loop"));
            };
            let s = eval_int(core, start, env, omp)?;
            let e = eval_int(core, end, env, omp)?;
            if e <= s {
                return Ok(Flow::Normal);
            }
            let (s, e) = (s as usize, e as usize);
            let n = num_threads.unwrap_or_else(pyjama_omp::default_num_threads);
            let sched = match schedule {
                LoopSchedule::Static => Schedule::Static { chunk: None },
                LoopSchedule::Dynamic(c) => Schedule::Dynamic { chunk: (*c).max(1) },
                LoopSchedule::Guided(c) => Schedule::Guided {
                    min_chunk: (*c).max(1),
                },
            };
            let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
            pyjama_omp::parallel(n, |ctx| {
                ctx.for_range_nowait(s..e, sched, |i| {
                    let iter_env = env.push();
                    iter_env.declare(var, Value::Int(i as i64));
                    if let Err(err) = exec_block(core, loop_body, &iter_env, None) {
                        errors.lock().push(err);
                    }
                });
            });
            match errors.into_inner().into_iter().next() {
                Some(e) => Err(e),
                None => Ok(Flow::Normal),
            }
        }
        Directive::Critical(name) => {
            let key = if name.is_empty() { "<pj-anon>" } else { name };
            let lock = pyjama_omp::sync::critical_lock(key);
            let _g = lock.lock();
            exec_block(core, body, env, omp)
        }
        Directive::Barrier => match omp {
            Some(ctx) => {
                ctx.barrier();
                Ok(Flow::Normal)
            }
            None => Err(rt_err("barrier directive outside a parallel region")),
        },
        Directive::Master => match omp {
            Some(ctx) => {
                if ctx.is_master() {
                    exec_block(core, body, env, omp)
                } else {
                    Ok(Flow::Normal)
                }
            }
            None => exec_block(core, body, env, omp),
        },
        Directive::Single => match omp {
            Some(ctx) => {
                let result: Mutex<Option<Result<(), CompileError>>> = Mutex::new(None);
                ctx.single(|| {
                    let r = exec_block(core, body, env, omp).map(|_| ());
                    *result.lock() = Some(r);
                });
                match result.into_inner() {
                    Some(Err(e)) => Err(e),
                    _ => Ok(Flow::Normal),
                }
            }
            None => exec_block(core, body, env, omp),
        },
        Directive::Task => match omp {
            Some(ctx) => {
                // Asynchronous within the region; the closure owns clones
                // of the shared cells (data context preserved).
                let core2 = Arc::clone(core);
                let body2 = body.clone();
                let env2 = env.clone();
                ctx.task(move || {
                    if let Err(e) = exec_block(&core2, &body2, &env2, None) {
                        core2.errors.lock().push(e.to_string());
                    }
                });
                Ok(Flow::Normal)
            }
            // "An orphaned task directive will execute sequentially" (§I).
            None => exec_block(core, body, env, omp),
        },
        Directive::TaskWait => {
            if let Some(ctx) = omp {
                ctx.taskwait();
            }
            Ok(Flow::Normal)
        }
        Directive::Sections => match omp {
            Some(ctx) => {
                let errors: Mutex<Vec<CompileError>> = Mutex::new(Vec::new());
                {
                    let errors = &errors;
                    let section_fns: Vec<Box<dyn Fn() + Sync>> = body
                        .stmts
                        .iter()
                        .map(|stmt| {
                            let stmt = stmt.clone();
                            Box::new(move || {
                                let section_env = env.push();
                                if let Err(e) =
                                    exec_stmt(core, &stmt, &section_env, None).map(|_| ())
                                {
                                    errors.lock().push(e);
                                }
                            }) as Box<dyn Fn() + Sync>
                        })
                        .collect();
                    let refs: Vec<&(dyn Fn() + Sync)> =
                        section_fns.iter().map(|b| b.as_ref()).collect();
                    ctx.sections(&refs);
                }
                match errors.into_inner().into_iter().next() {
                    Some(e) => Err(e),
                    None => Ok(Flow::Normal),
                }
            }
            None => exec_block(core, body, env, omp),
        },
    }
}

/// Evaluates an expression in boolean context. Plain variable reads borrow
/// the cell's value in place instead of cloning it.
fn eval_truthy(
    core: &Arc<Core>,
    expr: &Expr,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<bool, CompileError> {
    match expr {
        Expr::Var(name) => env.with(name, Value::truthy),
        _ => eval(core, expr, env, omp)?.truthy(),
    }
}

/// Evaluates an expression in integer context (loop bounds, indices)
/// without cloning plain variable reads.
fn eval_int(
    core: &Arc<Core>,
    expr: &Expr,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<i64, CompileError> {
    match expr {
        Expr::Var(name) => env.with(name, Value::as_int),
        _ => eval(core, expr, env, omp)?.as_int(),
    }
}

fn eval(
    core: &Arc<Core>,
    expr: &Expr,
    env: &Env,
    omp: Option<&Ctx>,
) -> Result<Value, CompileError> {
    match expr {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Var(name) => env.get(name),
        Expr::Index { array, index } => {
            let a = eval(core, array, env, omp)?;
            let i = eval_int(core, index, env, omp)?;
            match a {
                Value::Arr(a) => {
                    let g = a.lock();
                    usize::try_from(i)
                        .ok()
                        .and_then(|i| g.get(i).cloned())
                        .ok_or_else(|| rt_err(format!("index {i} out of bounds")))
                }
                other => Err(rt_err(format!("cannot index a {}", other.type_name()))),
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval(core, expr, env, omp)?;
            match (op, v) {
                (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
                (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (op, v) => Err(rt_err(format!("cannot apply {op:?} to {}", v.type_name()))),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit logical operators.
            if matches!(op, BinOp::And) {
                return Ok(Value::Bool(
                    eval_truthy(core, lhs, env, omp)? && eval_truthy(core, rhs, env, omp)?,
                ));
            }
            if matches!(op, BinOp::Or) {
                return Ok(Value::Bool(
                    eval_truthy(core, lhs, env, omp)? || eval_truthy(core, rhs, env, omp)?,
                ));
            }
            let l = eval(core, lhs, env, omp)?;
            let r = eval(core, rhs, env, omp)?;
            binary(*op, &l, &r)
        }
        Expr::Call { name, args, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(core, a, env, omp)?);
            }
            // User functions shadow builtins. Borrowing the function out of
            // the shared program (instead of cloning its AST per call) is
            // the single biggest interpreter hot-path win.
            if let Some(f) = core.program.function(name) {
                return call_function(core, f, vals, omp);
            }
            builtin(core, name, vals, omp)
        }
    }
}

/// Applies a binary operator. Shared by the interpreter, the VM's generic
/// `Bin` op fallback, and the `min`/`max` builtins — one source of truth
/// for PJ's numeric/string semantics.
pub(crate) fn binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, CompileError> {
    use BinOp::*;
    use Value::*;
    // String concatenation with +.
    if matches!(op, Add) {
        if let (Str(a), b) = (&l, &r) {
            return Ok(Str(format!("{a}{}", b.display())));
        }
        if let (a, Str(b)) = (&l, &r) {
            return Ok(Str(format!("{}{b}", a.display())));
        }
    }
    match (op, &l, &r) {
        (Eq, _, _) => return Ok(Bool(l == r)),
        (Ne, _, _) => return Ok(Bool(l != r)),
        _ => {}
    }
    let numeric = |op: BinOp, a: f64, b: f64| -> Result<Value, CompileError> {
        Ok(match op {
            Add => Float(a + b),
            Sub => Float(a - b),
            Mul => Float(a * b),
            Div => Float(a / b),
            Rem => Float(a % b),
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            _ => return Err(rt_err(format!("bad float op {op:?}"))),
        })
    };
    match (&l, &r) {
        (Int(a), Int(b)) => Ok(match op {
            Add => Int(a.wrapping_add(*b)),
            Sub => Int(a.wrapping_sub(*b)),
            Mul => Int(a.wrapping_mul(*b)),
            Div => {
                if *b == 0 {
                    return Err(rt_err("division by zero"));
                }
                Int(a / b)
            }
            Rem => {
                if *b == 0 {
                    return Err(rt_err("remainder by zero"));
                }
                Int(a % b)
            }
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            _ => return Err(rt_err(format!("bad int op {op:?}"))),
        }),
        (Float(a), Float(b)) => numeric(op, *a, *b),
        (Int(a), Float(b)) => numeric(op, *a as f64, *b),
        (Float(a), Int(b)) => numeric(op, *a, *b as f64),
        (Str(a), Str(b)) => Ok(match op {
            Lt => Bool(a < b),
            Le => Bool(a <= b),
            Gt => Bool(a > b),
            Ge => Bool(a >= b),
            _ => return Err(rt_err(format!("bad string op {op:?}"))),
        }),
        _ => Err(rt_err(format!(
            "type error: {} {op:?} {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn builtin(
    core: &Arc<Core>,
    name: &str,
    args: Vec<Value>,
    omp: Option<&Ctx>,
) -> Result<Value, CompileError> {
    match crate::builtins::Builtin::from_name(name) {
        Some(b) => {
            let host = crate::builtins::Host {
                output: &core.output,
                epoch: core.epoch,
            };
            crate::builtins::call(b, &host, args, omp)
        }
        None => Err(rt_err(format!("unknown function `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> RunOutput {
        run_with(src, &ExecConfig::default())
    }

    fn run_with(src: &str, config: &ExecConfig) -> RunOutput {
        let program = parse(src).expect("parse");
        Interpreter::new(Arc::new(program))
            .run(config)
            .unwrap_or_else(|e| panic!("run failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("fn main() { print(1 + 2 * 3, \"and\", 10 / 4, 10.0 / 4.0); }");
        assert_eq!(out.output, vec!["7 and 2 2.5"]);
    }

    #[test]
    fn variables_and_compound_assign() {
        let out = run("fn main() { let x = 1; x += 4; x *= 2; print(x); }");
        assert_eq!(out.output, vec!["10"]);
    }

    #[test]
    fn control_flow() {
        let out = run(
            r#"fn main() {
                let total = 0;
                for i in 0..5 { if i % 2 == 0 { total += i; } }
                let n = 3;
                while n > 0 { total += 100; n -= 1; }
                print(total);
            }"#,
        );
        assert_eq!(out.output, vec!["306"]);
    }

    #[test]
    fn functions_and_recursion() {
        let out = run(
            r#"fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }
               fn main() { print(fib(10)); }"#,
        );
        assert_eq!(out.output, vec!["55"]);
    }

    #[test]
    fn arrays_share_by_reference() {
        let out = run(
            r#"fn fill(a) { push(a, 7); }
               fn main() { let a = arr(); fill(a); print(len(a), a[0]); }"#,
        );
        assert_eq!(out.output, vec!["1 7"]);
    }

    #[test]
    fn string_concat() {
        let out = run(r#"fn main() { print("n=" + 42); }"#);
        assert_eq!(out.output, vec!["n=42"]);
    }

    #[test]
    fn target_nowait_runs_in_background() {
        let out = run(
            r#"fn main() {
                let done = arr();
                //#omp target virtual(worker) nowait
                { push(done, 1); }
                //#omp target virtual(worker) name_as(j)
                { push(done, 2); }
                //#omp wait(j)
                print(len(done) >= 1);
            }"#,
        );
        assert_eq!(out.output, vec!["true"]);
    }

    #[test]
    fn target_wait_blocks() {
        let out = run(
            r#"fn main() {
                let a = arr();
                //#omp target virtual(worker)
                { push(a, 1); }
                print(len(a));
            }"#,
        );
        assert_eq!(out.output, vec!["1"]);
    }

    #[test]
    fn data_context_is_shared_with_target_block() {
        // §III-B: the target block mutates the enclosing variable directly.
        let out = run(
            r#"fn main() {
                let x = 0;
                //#omp target virtual(worker)
                { x = 42; }
                print(x);
            }"#,
        );
        assert_eq!(out.output, vec!["42"]);
    }

    #[test]
    fn target_if_false_runs_inline() {
        let out = run(
            r#"fn main() {
                let n = 2;
                //#omp target virtual(worker) if(n > 3)
                { n = 99; }
                print(n);
            }"#,
        );
        assert_eq!(out.output, vec!["99"], "disabled directive still runs the block");
    }

    #[test]
    fn figure6_shape_runs() {
        let out = run(
            r#"fn download_and_compute(hs, log) {
                push(log, "worker:" + hs);
                //#omp target virtual(edt)
                { push(log, "edt:display"); }
            }
            fn main() {
                let log = arr();
                push(log, "edt:start");
                //#omp target virtual(worker) name_as(click)
                {
                    let hs = hash("input");
                    download_and_compute(hs, log);
                    //#omp target virtual(edt)
                    { push(log, "edt:finished"); }
                }
                //#omp wait(click)
                print(len(log));
            }"#,
        );
        assert_eq!(out.output, vec!["4"]);
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let out = run(
            r#"fn main() {
                let count = arr();
                //#omp parallel num_threads(4)
                {
                    //#omp critical
                    { push(count, omp_get_thread_num()); }
                }
                print(len(count), omp_get_num_threads());
            }"#,
        );
        assert_eq!(out.output, vec!["4 1"]);
    }

    #[test]
    fn parallel_for_covers_range() {
        let out = run(
            r#"fn main() {
                let hits = zeros(20);
                //#omp parallel for num_threads(3) schedule(dynamic, 2)
                for i in 0..20 { hits[i] = hits[i] + 1; }
                let total = 0;
                for i in 0..20 { total += hits[i]; }
                print(total);
            }"#,
        );
        assert_eq!(out.output, vec!["20"]);
    }

    #[test]
    fn single_and_master_inside_parallel() {
        let out = run(
            r#"fn main() {
                let s = arr();
                let m = arr();
                //#omp parallel num_threads(4)
                {
                    //#omp single
                    { push(s, 1); }
                    //#omp master
                    { push(m, 1); }
                }
                print(len(s), len(m));
            }"#,
        );
        assert_eq!(out.output, vec!["1 1"]);
    }

    #[test]
    fn barrier_outside_parallel_is_error() {
        let program = parse("fn main() { //#omp barrier\n }").unwrap();
        let r = Interpreter::new(Arc::new(program)).run(&ExecConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn ignoring_directives_gives_same_output() {
        let src = r#"fn main() {
            let x = 0;
            //#omp target virtual(worker)
            { x = x + 1; }
            //#omp parallel for num_threads(2)
            for i in 0..10 {
                //#omp critical
                { x = x + 1; }
            }
            print(x);
        }"#;
        let with = run(src);
        let without = run_with(
            src,
            &ExecConfig {
                ignore_directives: true,
                ..Default::default()
            },
        );
        assert_eq!(with.output, without.output, "sequential equivalence violated");
    }

    #[test]
    fn undefined_variable_is_runtime_error() {
        let program = parse("fn main() { print(nope); }").unwrap();
        let r = Interpreter::new(Arc::new(program)).run(&ExecConfig::default());
        assert!(matches!(r, Err(CompileError::Runtime(_))));
    }

    #[test]
    fn division_by_zero_is_runtime_error() {
        let program = parse("fn main() { print(1 / 0); }").unwrap();
        assert!(Interpreter::new(Arc::new(program))
            .run(&ExecConfig::default())
            .is_err());
    }

    #[test]
    fn error_inside_nowait_block_is_reported() {
        let program =
            parse("fn main() { //#omp target virtual(worker) nowait\n { print(1/0); } }").unwrap();
        let r = Interpreter::new(Arc::new(program)).run(&ExecConfig::default());
        assert!(r.is_err(), "background errors must surface at run() exit");
    }

    #[test]
    fn main_return_value_surfaces() {
        let out = run("fn main() { return 41 + 1; }");
        assert_eq!(out.result, "42");
    }

    #[test]
    fn builtins_min_max_abs_sqrt() {
        let out = run("fn main() { print(min(2, 1), max(2, 1), abs(-5), sqrt(9)); }");
        assert_eq!(out.output, vec!["1 2 5 3"]);
    }

    #[test]
    fn is_edt_true_only_inside_edt_target() {
        let out = run(
            r#"fn main() {
                let r = arr();
                //#omp target virtual(edt)
                { push(r, is_edt()); }
                push(r, is_edt());
                print(r[0], r[1]);
            }"#,
        );
        assert_eq!(out.output, vec!["true false"]);
    }

    #[test]
    fn target_device_dispatches_to_simulated_accelerator() {
        let src = r#"fn main() {
            let x = 0;
            //#omp target device(0)
            { x = 41 + 1; }
            print(x);
        }"#;
        let program = Arc::new(parse(src).unwrap());
        // With a registered device:
        let out = Interpreter::new(Arc::clone(&program))
            .run(&ExecConfig {
                devices: vec![0],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.output, vec!["42"]);
        // Without: host-pool fallback, same result.
        let out = Interpreter::new(program).run(&ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["42"]);
    }

    #[test]
    fn break_and_continue() {
        let out = run(
            r#"fn main() {
                let s = 0;
                for i in 0..100 {
                    if i == 5 { break; }
                    if i % 2 == 1 { continue; }
                    s += i;
                }
                let w = 0;
                while true {
                    w += 1;
                    if w == 7 { break; }
                }
                print(s, w);
            }"#,
        );
        assert_eq!(out.output, vec!["6 7"]); // 0+2+4, then 7
    }

    #[test]
    fn break_outside_loop_is_error() {
        let program = parse("fn main() { break; }").unwrap();
        assert!(Interpreter::new(Arc::new(program))
            .run(&ExecConfig::default())
            .is_err());
    }

    #[test]
    fn task_and_taskwait_inside_parallel() {
        let out = run(
            r#"fn main() {
                let acc = arr();
                //#omp parallel num_threads(3)
                {
                    //#omp single
                    {
                        for i in 0..6 {
                            //#omp task
                            {
                                //#omp critical
                                { push(acc, i); }
                            }
                        }
                    }
                    //#omp taskwait
                }
                print(len(acc));
            }"#,
        );
        assert_eq!(out.output, vec!["6"]);
    }

    #[test]
    fn orphaned_task_runs_sequentially() {
        // §I: "an orphaned task directive will execute sequentially".
        let out = run(
            r#"fn main() {
                let log = arr();
                //#omp task
                { push(log, "task"); }
                push(log, "after");
                print(log[0], log[1]);
            }"#,
        );
        assert_eq!(out.output, vec!["task after"]);
    }

    #[test]
    fn sections_each_run_once() {
        let out = run(
            r#"fn main() {
                let log = arr();
                //#omp parallel num_threads(2)
                {
                    //#omp sections
                    {
                        { //#omp critical
                          { push(log, "a"); } }
                        { //#omp critical
                          { push(log, "b"); } }
                        { //#omp critical
                          { push(log, "c"); } }
                    }
                }
                print(len(log));
            }"#,
        );
        assert_eq!(out.output, vec!["3"]);
    }

    #[test]
    fn string_builtins() {
        let out = run(
            r#"fn main() {
                let s = "hello world";
                print(substr(s, 0, 5), contains(s, "wor"), replace(s, "world", "pj"));
                print(pow(2, 10), floor(3.9));
            }"#,
        );
        assert_eq!(out.output, vec!["hello true hello pj", "1024 3"]);
    }

    #[test]
    fn await_mode_completes_with_continuation_after() {
        let out = run(
            r#"fn main() {
                let log = arr();
                //#omp target virtual(worker) await
                { push(log, "block"); }
                push(log, "continuation");
                print(log[0], log[1]);
            }"#,
        );
        assert_eq!(out.output, vec!["block continuation"]);
    }
}
