//! A source-to-source compiler for **PJ**, a small Java-like language with
//! `//#omp` directives — the reproduction of Pyjama's compiler (§IV).
//!
//! Pyjama is "an OpenMP-like compiling tool for Java" whose "source-to-source
//! compiler and its runtime support help programmers to quickly develop
//! applications with the asynchronization and parallelization support" (§I).
//! A full Java front end is out of scope (and beside the point); PJ captures
//! the directive-bearing subset the paper's examples use:
//!
//! ```text
//! fn button_on_click() {
//!     show_msg("Started EDT handling");
//!     //#omp target virtual(worker) nowait
//!     {
//!         let hs = hash(collect_input());
//!         //#omp target virtual(edt)
//!         {
//!             show_msg("Finished!");
//!         }
//!     }
//! }
//! ```
//!
//! The pipeline mirrors the paper's:
//!
//! 1. [`lexer`] + [`parser`] — parse PJ, treating `//#omp …` comments as
//!    directives (a non-supporting compiler would see plain comments: the
//!    *sequential-equivalence* property of §III).
//! 2. [`transform()`] — restructure every `target` block into a
//!    `TargetRegion_k` runnable plus a `PjRuntime.invokeTargetBlock(…)`
//!    call, reproducing the §IV-A compilation example; the transformed
//!    program can be pretty-printed as Java-like source and compared to the
//!    paper's output shape.
//! 3. Execution, on either of two engines selected by
//!    [`ExecConfig::engine`]:
//!    * [`interp`] — the tree-walking interpreter, kept as the semantic
//!      oracle for differential testing ([`Engine::Interp`]);
//!    * [`compile`] + [`vm`] — lowering to a register [`bytecode`] module
//!      executed by a flat dispatch-loop VM ([`Engine::Vm`], the default).
//!
//!    Both engines drive the same substrates: target blocks dispatch
//!    through [`pyjama_runtime::Runtime`], parallel regions run on
//!    [`pyjama_omp`] teams. Directive-captured variables are shared cells,
//!    so the *data-context sharing* of §III-B holds on both engines: a
//!    target block sees exactly the variables of its enclosing scope, no
//!    copying. (The VM keeps everything *else* in unboxed registers, which
//!    is where its speedup comes from.)
//!
//! Disabling directives ([`CompileOptions::ignore_directives`]) must never
//! change a program's output — tests assert this sequential-equivalence on
//! every example, on both engines.

pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod transform;
pub mod vm;

pub use ast::Program;
pub use builtins::Builtin;
pub use bytecode::Module;
pub use compile::compile_program;
pub use interp::{Engine, ExecConfig, Interpreter, RunOutput, Value};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
pub use transform::{transform, TransformedProgram};
pub use vm::{reset_vm_stats, vm_stats};

/// Options controlling compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Treat `//#omp` lines as ordinary comments (an unsupporting
    /// compiler). The program must still run correctly, sequentially.
    pub ignore_directives: bool,
}

/// Errors from any stage of the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Lexical error with line number.
    Lex { line: usize, message: String },
    /// Parse error with line number.
    Parse { line: usize, message: String },
    /// Directive error (bad clause, misplaced directive).
    Directive { line: usize, message: String },
    /// Runtime error during interpretation.
    Runtime(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            CompileError::Parse { line, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            CompileError::Directive { line, message } => {
                write!(f, "directive error (line {line}): {message}")
            }
            CompileError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Front-door helper: parse and run a PJ program with default targets
/// (`edt` + a 4-thread `worker`), returning its captured output.
pub fn run_source(source: &str) -> Result<RunOutput, CompileError> {
    let program = parse(source)?;
    let interp = Interpreter::new(std::sync::Arc::new(program));
    interp.run(&ExecConfig::default())
}
