//! AST → bytecode lowering for the PJ register VM.
//!
//! The two load-bearing decisions:
//!
//! * **Capture analysis boxes exactly the shared locals.** Before compiling
//!   a chunk, the compiler collects every name referenced under a directive
//!   body inside it. Locals (and parameters) whose names are in that set get
//!   a [`Op::NewCell`] at their declaration — the register holds an
//!   `Arc<Mutex<Value>>` cell, and directive dispatch hands clones of those
//!   cells to closure chunks. Everything else stays an unboxed register:
//!   reads and writes are plain slot accesses, which is where the VM's
//!   speedup over the cell-per-variable interpreter comes from.
//!
//! * **Every directive body is compiled twice**: once as a standalone
//!   closure chunk (the dispatch path) and once inline in the enclosing
//!   frame (the `ignore_directives` / disabled-`if` / orphaned path). The
//!   inline copy is what preserves the interpreter's *flow* semantics —
//!   `return` or `break` inside an inline `critical` body propagates into
//!   the enclosing function exactly as the tree-walker's `Flow` enum does,
//!   while the closure copy ends with `RetUnit` (the tree-walker discards a
//!   dispatched body's residual flow). The duplication is exponential only
//!   in directive-*nesting* depth, which is ≤3 in every program the paper
//!   shows.
//!
//! Lowering is infallible: semantic errors the interpreter only reports
//! when reached (undefined variables, bad arities, unknown functions,
//! orphaned `break`) become deferred [`Op::Fail`] ops carrying the
//! interpreter's exact message, so dead code stays as silent as it is under
//! the oracle.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::builtins::Builtin;
use crate::bytecode::*;

/// Lowers a parsed program to a bytecode module.
pub fn compile_program(program: &Program) -> Module {
    let mut c = Compiler {
        chunks: Vec::new(),
        funcs: HashMap::new(),
        frames: Vec::new(),
    };
    // Reserve a chunk slot per function up front so calls — including
    // forward and recursive ones — resolve to stable indices.
    for (i, f) in program.functions.iter().enumerate() {
        c.chunks.push(None);
        // First declaration wins, mirroring `Program::function`.
        c.funcs
            .entry(f.name.clone())
            .or_insert((i as u16, f.params.len()));
    }
    let mut main = None;
    for (i, f) in program.functions.iter().enumerate() {
        if c.funcs.get(&f.name) == Some(&(i as u16, f.params.len())) {
            c.function(i, f);
            if f.name == "main" {
                main = Some(i);
            }
        } else {
            // A shadowed duplicate: compile it anyway (indices must line
            // up) but nothing references it.
            c.function(i, f);
        }
    }
    Module {
        chunks: c.chunks.into_iter().map(|c| c.expect("filled")).collect(),
        main,
    }
}

/// A local's storage: its register, and whether that register holds a
/// shared cell (because some directive body references the name).
#[derive(Clone, Copy)]
struct Local {
    reg: Reg,
    boxed: bool,
}

enum VarRef {
    Local(Local),
    Cap(u16),
}

#[derive(Default)]
struct LoopCtx {
    break_patches: Vec<usize>,
    cont_patches: Vec<usize>,
}

struct FrameCtx {
    name: String,
    kind: ChunkKind,
    params: usize,
    scopes: Vec<Vec<(String, Local)>>,
    next_reg: u16,
    high: u16,
    ops: Vec<Op>,
    consts: Vec<Const>,
    specs: Vec<DirectiveSpec>,
    captures: Vec<(String, CapSrc)>,
    /// Names referenced under a directive body within this chunk — the
    /// locals that must be boxed at declaration.
    captured_names: HashSet<String>,
    loops: Vec<LoopCtx>,
}

impl FrameCtx {
    fn new(name: String, kind: ChunkKind, captured_names: HashSet<String>) -> Self {
        FrameCtx {
            name,
            kind,
            params: 0,
            scopes: vec![Vec::new()],
            next_reg: 0,
            high: 0,
            ops: Vec::new(),
            consts: Vec::new(),
            specs: Vec::new(),
            captures: Vec::new(),
            captured_names,
            loops: Vec::new(),
        }
    }
}

struct Compiler {
    chunks: Vec<Option<Chunk>>,
    funcs: HashMap<String, (u16, usize)>,
    frames: Vec<FrameCtx>,
}

impl Compiler {
    fn f(&mut self) -> &mut FrameCtx {
        self.frames.last_mut().expect("active frame")
    }

    fn emit(&mut self, op: Op) -> usize {
        let f = self.f();
        f.ops.push(op);
        f.ops.len() - 1
    }

    fn here(&mut self) -> u32 {
        self.f().ops.len() as u32
    }

    fn alloc(&mut self) -> Reg {
        let f = self.f();
        let r = f.next_reg;
        f.next_reg += 1;
        f.high = f.high.max(f.next_reg);
        r
    }

    fn const_idx(&mut self, c: Const) -> u16 {
        let f = self.f();
        if let Some(i) = f.consts.iter().position(|x| *x == c) {
            return i as u16;
        }
        f.consts.push(c);
        (f.consts.len() - 1) as u16
    }

    fn str_idx(&mut self, s: impl Into<String>) -> u16 {
        self.const_idx(Const::Str(s.into()))
    }

    /// Patches the jump-target field of the op at `at` to `to`.
    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.f().ops[at] {
            Op::Jump { to: t }
            | Op::JumpIfFalse { to: t, .. }
            | Op::JumpIfTrue { to: t, .. }
            | Op::JumpIfIgnoring { to: t }
            | Op::Dispatch { skip: t, .. } => *t = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn fail(&mut self, msg: impl Into<String>) -> usize {
        let idx = self.str_idx(msg.into());
        self.emit(Op::Fail { msg: idx })
    }

    // ---- name resolution ------------------------------------------------

    /// Resolves `name` in frame `fi`, adding transitive captures to every
    /// intervening closure frame. Functions never capture, so the climb
    /// stops at a `Function` frame.
    fn resolve_in(&mut self, fi: usize, name: &str) -> Option<VarRef> {
        for scope in self.frames[fi].scopes.iter().rev() {
            for (n, l) in scope.iter().rev() {
                if n == name {
                    return Some(VarRef::Local(*l));
                }
            }
        }
        if let Some(i) = self.frames[fi]
            .captures
            .iter()
            .position(|(n, _)| n == name)
        {
            return Some(VarRef::Cap(i as u16));
        }
        if self.frames[fi].kind == ChunkKind::Function || fi == 0 {
            return None;
        }
        let src = match self.resolve_in(fi - 1, name)? {
            // Capture analysis boxed every parent local a directive body
            // references, so the register holds a cell.
            VarRef::Local(l) => CapSrc::Reg(l.reg),
            VarRef::Cap(i) => CapSrc::Cap(i),
        };
        let f = &mut self.frames[fi];
        f.captures.push((name.to_string(), src));
        Some(VarRef::Cap((f.captures.len() - 1) as u16))
    }

    fn resolve(&mut self, name: &str) -> Option<VarRef> {
        self.resolve_in(self.frames.len() - 1, name)
    }

    fn declare(&mut self, name: &str, reg: Reg) -> bool {
        let boxed = self.f().captured_names.contains(name);
        self.f()
            .scopes
            .last_mut()
            .expect("scope")
            .push((name.to_string(), Local { reg, boxed }));
        if boxed {
            self.emit(Op::NewCell { reg });
        }
        boxed
    }

    // ---- chunks ---------------------------------------------------------

    fn function(&mut self, idx: usize, f: &Function) {
        let captured = collect_captured(&f.body);
        self.frames
            .push(FrameCtx::new(f.name.clone(), ChunkKind::Function, captured));
        self.f().params = f.params.len();
        for p in f.params.clone() {
            let r = self.alloc();
            self.declare(&p, r);
        }
        self.block(&f.body);
        self.emit(Op::RetUnit);
        self.seal(idx);
    }

    /// Compiles `body` as a standalone closure chunk and returns the
    /// dispatch recipe (chunk index + capture sources in the *current*
    /// frame's terms).
    fn closure(&mut self, label: String, params: &[String], body: &Block) -> ClosureRef {
        let idx = self.chunks.len();
        self.chunks.push(None);
        let captured = collect_captured(body);
        self.frames
            .push(FrameCtx::new(label, ChunkKind::Closure, captured));
        self.f().params = params.len();
        for p in params {
            let r = self.alloc();
            self.declare(p, r);
        }
        self.block(body);
        self.emit(Op::RetUnit);
        let caps: Vec<CapSrc> = self
            .frames
            .last()
            .expect("frame")
            .captures
            .iter()
            .map(|(_, s)| *s)
            .collect();
        self.seal(idx);
        ClosureRef {
            chunk: idx as u16,
            caps,
        }
    }

    fn seal(&mut self, idx: usize) {
        let f = self.frames.pop().expect("frame");
        self.chunks[idx] = Some(Chunk {
            name: f.name,
            params: f.params,
            regs: f.high as usize,
            captures: f.captures.len(),
            ops: f.ops,
            consts: f.consts,
            specs: f.specs,
            kind: f.kind,
        });
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self, block: &Block) {
        let save = self.f().next_reg;
        self.f().scopes.push(Vec::new());
        for stmt in &block.stmts {
            let mark = self.f().next_reg;
            self.stmt(stmt);
            // Statement-level watermark: release every temporary, keeping
            // only a `let`'s local (always the first register it allocated).
            let keep = u16::from(matches!(stmt, Stmt::Let { .. }));
            self.f().next_reg = mark + keep;
        }
        self.f().scopes.pop();
        self.f().next_reg = save;
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, value, .. } => {
                let dst = self.alloc();
                self.expr(value, Some(dst));
                self.declare(name, dst);
            }
            Stmt::Assign { name, value, .. } => {
                // An unboxed local can be the value's destination directly:
                // every expr form writes its `dst` only after reading its
                // operands (`x = y && x` reads the old `x` before the final
                // LoadBool lands), so no temporary is needed.
                match self.resolve(name) {
                    Some(VarRef::Local(l)) if !l.boxed => {
                        self.expr(value, Some(l.reg));
                    }
                    Some(VarRef::Local(l)) => {
                        let t = self.expr(value, None);
                        self.emit(Op::CellSet { dst: l.reg, src: t });
                    }
                    Some(VarRef::Cap(i)) => {
                        let t = self.expr(value, None);
                        self.emit(Op::CapSet { idx: i, src: t });
                    }
                    None => {
                        self.expr(value, None);
                        self.fail(format!("assignment to undefined variable `{name}`"));
                    }
                }
            }
            Stmt::IndexAssign {
                name, index, value, ..
            } => {
                // Interpreter order: index (as int), value, then the array.
                let i = self.expr(index, None);
                self.emit(Op::AssertInt { reg: i });
                let v = self.expr(value, None);
                let a = self.expr(&Expr::Var(name.clone()), None);
                self.emit(Op::IndexSet { arr: a, idx: i, val: v });
            }
            Stmt::Expr(e) => {
                self.expr(e, None);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let c = self.expr(cond, None);
                let jf = self.emit(Op::JumpIfFalse { cond: c, to: 0 });
                self.block(then_block);
                match else_block {
                    Some(eb) => {
                        let je = self.emit(Op::Jump { to: 0 });
                        let here = self.here();
                        self.patch(jf, here);
                        self.block(eb);
                        let here = self.here();
                        self.patch(je, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jf, here);
                    }
                }
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                let mark = self.f().next_reg;
                let c = self.expr(cond, None);
                let jf = self.emit(Op::JumpIfFalse { cond: c, to: 0 });
                self.f().next_reg = mark;
                self.f().loops.push(LoopCtx::default());
                self.block(body);
                let ctx = self.f().loops.pop().expect("loop");
                for p in ctx.cont_patches {
                    self.patch(p, top);
                }
                self.emit(Op::Jump { to: top });
                let end = self.here();
                self.patch(jf, end);
                for p in ctx.break_patches {
                    self.patch(p, end);
                }
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => self.for_loop(var, start, end, body),
            Stmt::Break => match self.f().loops.last_mut() {
                Some(_) => {
                    let j = self.emit(Op::Jump { to: 0 });
                    self.f()
                        .loops
                        .last_mut()
                        .expect("loop")
                        .break_patches
                        .push(j);
                }
                None => self.orphan_flow(),
            },
            Stmt::Continue => match self.f().loops.last_mut() {
                Some(_) => {
                    let j = self.emit(Op::Jump { to: 0 });
                    self.f()
                        .loops
                        .last_mut()
                        .expect("loop")
                        .cont_patches
                        .push(j);
                }
                None => self.orphan_flow(),
            },
            Stmt::Return(e) => match e {
                Some(e) => {
                    let r = self.expr(e, None);
                    self.emit(Op::Ret { src: r });
                }
                None => {
                    self.emit(Op::RetUnit);
                }
            },
            Stmt::Block(b) => self.block(b),
            Stmt::Directive {
                directive, body, line,
            } => self.directive(directive, body, *line),
        }
    }

    /// `break`/`continue` with no enclosing loop: a runtime error in a
    /// function, a silent early end in a closure (the interpreter discards
    /// a dispatched body's residual `Flow`).
    fn orphan_flow(&mut self) {
        match self.f().kind {
            ChunkKind::Function => {
                let name = self.f().name.clone();
                self.fail(format!(
                    "break/continue outside a loop in function `{name}`"
                ));
            }
            ChunkKind::Closure => {
                self.emit(Op::RetUnit);
            }
        }
    }

    fn for_loop(&mut self, var: &str, start: &Expr, end: &Expr, body: &Block) {
        // Interpreter order: start (as int), then end (as int), once.
        let rs = self.alloc();
        self.expr(start, Some(rs));
        self.emit(Op::AssertInt { reg: rs });
        let re = self.alloc();
        self.expr(end, Some(re));
        self.emit(Op::AssertInt { reg: re });
        let rv = self.alloc();
        let rc = self.alloc();
        let top = self.here();
        self.emit(Op::Bin {
            op: BinOp::Lt,
            dst: rc,
            a: rs,
            b: re,
        });
        let jf = self.emit(Op::JumpIfFalse { cond: rc, to: 0 });
        self.emit(Op::Move { dst: rv, src: rs });
        self.f().scopes.push(Vec::new());
        // A fresh cell per iteration when captured, matching the
        // interpreter's per-iteration `declare`.
        self.declare(var, rv);
        self.f().loops.push(LoopCtx::default());
        self.block(body);
        let ctx = self.f().loops.pop().expect("loop");
        self.f().scopes.pop();
        let cont = self.here();
        for p in ctx.cont_patches {
            self.patch(p, cont);
        }
        self.emit(Op::AddImm { dst: rs, a: rs, imm: 1 });
        self.emit(Op::Jump { to: top });
        let end_pc = self.here();
        self.patch(jf, end_pc);
        for p in ctx.break_patches {
            self.patch(p, end_pc);
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Compiles `e`, returning the register holding the result. With
    /// `want`, the result is forced into that register (every op writes its
    /// destination only after reading its operands, so a caller-provided
    /// destination cannot be clobbered mid-expression). Without it, a plain
    /// unboxed variable read returns the local's own register — zero-copy,
    /// but read-only for the caller.
    fn expr(&mut self, e: &Expr, want: Option<Reg>) -> Reg {
        let dst = |c: &mut Compiler, want: Option<Reg>| want.unwrap_or_else(|| c.alloc());
        match e {
            Expr::Int(v) => {
                let d = dst(self, want);
                if let Ok(v32) = i32::try_from(*v) {
                    self.emit(Op::LoadInt { dst: d, v: v32 });
                } else {
                    let idx = self.const_idx(Const::Int(*v));
                    self.emit(Op::LoadConst { dst: d, idx });
                }
                d
            }
            Expr::Float(v) => {
                let idx = self.const_idx(Const::Float(*v));
                let d = dst(self, want);
                self.emit(Op::LoadConst { dst: d, idx });
                d
            }
            Expr::Bool(b) => {
                let d = dst(self, want);
                self.emit(Op::LoadBool { dst: d, v: *b });
                d
            }
            Expr::Str(s) => {
                let idx = self.str_idx(s.clone());
                let d = dst(self, want);
                self.emit(Op::LoadConst { dst: d, idx });
                d
            }
            Expr::Var(name) => match self.resolve(name) {
                Some(VarRef::Local(l)) if l.boxed => {
                    let d = dst(self, want);
                    self.emit(Op::CellGet { dst: d, src: l.reg });
                    d
                }
                Some(VarRef::Local(l)) => match want {
                    Some(w) => {
                        if w != l.reg {
                            self.emit(Op::Move { dst: w, src: l.reg });
                        }
                        w
                    }
                    None => l.reg,
                },
                Some(VarRef::Cap(i)) => {
                    let d = dst(self, want);
                    self.emit(Op::CapGet { dst: d, idx: i });
                    d
                }
                None => {
                    self.fail(format!("undefined variable `{name}`"));
                    dst(self, want)
                }
            },
            Expr::Index { array, index } => {
                // Interpreter order: array first, then index (as int).
                let a = self.expr(array, None);
                let i = self.expr(index, None);
                self.emit(Op::AssertInt { reg: i });
                let d = dst(self, want);
                self.emit(Op::Index { dst: d, arr: a, idx: i });
                d
            }
            Expr::Unary { op, expr } => {
                let s = self.expr(expr, None);
                let d = dst(self, want);
                match op {
                    UnOp::Neg => self.emit(Op::Neg { dst: d, src: s }),
                    UnOp::Not => self.emit(Op::Not { dst: d, src: s }),
                };
                d
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    let d = dst(self, want);
                    let short = matches!(op, BinOp::Or);
                    let mut patches = Vec::new();
                    for side in [lhs, rhs] {
                        let mark = self.f().next_reg;
                        let r = self.expr(side, None);
                        let at = if short {
                            self.emit(Op::JumpIfTrue { cond: r, to: 0 })
                        } else {
                            self.emit(Op::JumpIfFalse { cond: r, to: 0 })
                        };
                        patches.push(at);
                        self.f().next_reg = mark;
                    }
                    self.emit(Op::LoadBool { dst: d, v: !short });
                    let jend = self.emit(Op::Jump { to: 0 });
                    let here = self.here();
                    for p in patches {
                        self.patch(p, here);
                    }
                    self.emit(Op::LoadBool { dst: d, v: short });
                    let here = self.here();
                    self.patch(jend, here);
                    d
                }
                _ => {
                    let a = self.expr(lhs, None);
                    // Int-literal right operand: fuse the LoadInt away. The
                    // literal has no effects, so skipping its evaluation is
                    // unobservable.
                    if let Expr::Int(v) = rhs.as_ref() {
                        if let Ok(imm) = i32::try_from(*v) {
                            let d = dst(self, want);
                            self.emit(Op::BinImm {
                                op: *op,
                                dst: d,
                                a,
                                imm,
                            });
                            return d;
                        }
                    }
                    let b = self.expr(rhs, None);
                    let d = dst(self, want);
                    self.emit(Op::Bin {
                        op: *op,
                        dst: d,
                        a,
                        b,
                    });
                    d
                }
            },
            Expr::Call { name, args, .. } => {
                let d = dst(self, want);
                // Argument block: contiguous at the top of the frame; the
                // callee's frame overlaps it, so arguments pass by position
                // without copying.
                let base = self.f().next_reg;
                for _ in args {
                    self.alloc();
                }
                for (k, a) in args.iter().enumerate() {
                    let slot = base + k as u16;
                    self.expr(a, Some(slot));
                    // Release sub-expression temps, keep the block.
                    self.f().next_reg = base + args.len() as u16;
                }
                let argc = args.len() as u8;
                match self.funcs.get(name).copied() {
                    Some((chunk, params)) if params == args.len() => {
                        self.emit(Op::Call {
                            chunk,
                            dst: d,
                            base,
                            argc,
                        });
                    }
                    Some((_, params)) => {
                        // Arity errors surface after argument evaluation,
                        // like the interpreter's.
                        self.fail(format!(
                            "function `{name}` expects {params} arguments, got {}",
                            args.len()
                        ));
                    }
                    None => match Builtin::from_name(name) {
                        Some(b) => {
                            self.emit(Op::CallBuiltin {
                                b,
                                dst: d,
                                base,
                                argc,
                            });
                        }
                        None => {
                            self.fail(format!("unknown function `{name}`"));
                        }
                    },
                }
                d
            }
        }
    }

    // ---- directives -----------------------------------------------------

    fn add_spec(&mut self, spec: DirectiveSpec) -> u16 {
        let f = self.f();
        f.specs.push(spec);
        (f.specs.len() - 1) as u16
    }

    fn directive(&mut self, directive: &Directive, body: &Block, line: usize) {
        let owner = self.f().name.clone();
        let label = |kind: &str| format!("{owner}::{kind}@{line}");
        match directive {
            // Standalone directives: the parser guarantees an empty body.
            Directive::WaitTag(tag) => {
                let idx = self.str_idx(tag.clone());
                self.emit(Op::WaitTag { tag: idx });
            }
            Directive::Barrier => {
                self.emit(Op::Barrier);
            }
            Directive::TaskWait => {
                self.emit(Op::TaskWait);
            }
            Directive::Target {
                directive: d,
                if_cond,
            } => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                for tag in &d.wait_tags {
                    let idx = self.str_idx(tag.clone());
                    self.emit(Op::WaitTag { tag: idx });
                }
                let cond = if_cond.as_ref().map(|e| self.expr(e, None));
                let body_ref = self.closure(label("target"), &[], body);
                let spec = self.add_spec(DirectiveSpec::Target {
                    target: d.target.clone(),
                    mode: d.mode.clone(),
                    cond,
                    body: body_ref,
                });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::Parallel { num_threads } => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let body_ref = self.closure(label("parallel"), &[], body);
                let spec = self.add_spec(DirectiveSpec::Parallel {
                    num_threads: *num_threads,
                    body: body_ref,
                });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::ParallelFor {
                num_threads,
                schedule,
            } => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let dp = match body.stmts.first() {
                    Some(Stmt::For {
                        var,
                        start,
                        end,
                        body: loop_body,
                    }) => {
                        let rs = self.expr(start, None);
                        self.emit(Op::AssertInt { reg: rs });
                        let re = self.expr(end, None);
                        self.emit(Op::AssertInt { reg: re });
                        let body_ref = self.closure(
                            label("parallel_for"),
                            std::slice::from_ref(var),
                            loop_body,
                        );
                        let spec = self.add_spec(DirectiveSpec::ParallelFor {
                            num_threads: *num_threads,
                            schedule: *schedule,
                            start: rs,
                            end: re,
                            body: body_ref,
                        });
                        Some(self.emit(Op::Dispatch { spec, skip: 0 }))
                    }
                    _ => {
                        self.fail("parallel for must annotate a for loop");
                        None
                    }
                };
                let inline = self.here();
                self.patch(ji, inline);
                self.block(body);
                let end = self.here();
                if let Some(dp) = dp {
                    self.patch(dp, end);
                }
            }
            Directive::Critical(name) => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let spec = self.add_spec(DirectiveSpec::Critical { name: name.clone() });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::Master => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let spec = self.add_spec(DirectiveSpec::Master);
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::Single => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let body_ref = self.closure(label("single"), &[], body);
                let spec = self.add_spec(DirectiveSpec::Single { body: body_ref });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::Task => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let body_ref = self.closure(label("task"), &[], body);
                let spec = self.add_spec(DirectiveSpec::Task { body: body_ref });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
            Directive::Sections => {
                let ji = self.emit(Op::JumpIfIgnoring { to: 0 });
                let sections: Vec<ClosureRef> = body
                    .stmts
                    .iter()
                    .enumerate()
                    .map(|(k, stmt)| {
                        let b = Block {
                            stmts: vec![stmt.clone()],
                        };
                        self.closure(format!("{owner}::section{k}@{line}"), &[], &b)
                    })
                    .collect();
                let spec = self.add_spec(DirectiveSpec::Sections { sections });
                let dp = self.emit(Op::Dispatch { spec, skip: 0 });
                self.patch(ji, dp as u32 + 1);
                self.block(body);
                let end = self.here();
                self.patch(dp, end);
            }
        }
    }
}

// ---- capture analysis ---------------------------------------------------

/// Collects every name referenced under a directive body within `block` —
/// the set of locals that must live in shared cells. Conservative: names
/// declared inside directive bodies are included too (they box a shadowing
/// inline-copy local at worst, never change semantics).
fn collect_captured(block: &Block) -> HashSet<String> {
    let mut set = HashSet::new();
    collect_block(block, false, &mut set);
    set
}

fn collect_block(block: &Block, inside: bool, set: &mut HashSet<String>) {
    for stmt in &block.stmts {
        collect_stmt(stmt, inside, set);
    }
}

fn collect_stmt(stmt: &Stmt, inside: bool, set: &mut HashSet<String>) {
    let mut name = |n: &str| {
        if inside {
            set.insert(n.to_string());
        }
    };
    match stmt {
        Stmt::Let { name: n, value, .. } => {
            name(n);
            collect_expr(value, inside, set);
        }
        Stmt::Assign { name: n, value, .. } => {
            name(n);
            collect_expr(value, inside, set);
        }
        Stmt::IndexAssign {
            name: n,
            index,
            value,
            ..
        } => {
            name(n);
            collect_expr(index, inside, set);
            collect_expr(value, inside, set);
        }
        Stmt::Expr(e) => collect_expr(e, inside, set),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            collect_expr(cond, inside, set);
            collect_block(then_block, inside, set);
            if let Some(eb) = else_block {
                collect_block(eb, inside, set);
            }
        }
        Stmt::While { cond, body } => {
            collect_expr(cond, inside, set);
            collect_block(body, inside, set);
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            name(var);
            collect_expr(start, inside, set);
            collect_expr(end, inside, set);
            collect_block(body, inside, set);
        }
        Stmt::Return(Some(e)) => collect_expr(e, inside, set),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => collect_block(b, inside, set),
        Stmt::Directive {
            directive, body, ..
        } => {
            // The `if(…)` condition is evaluated pre-dispatch in the
            // enclosing frame, so it inherits the current flag; the body
            // itself is captured.
            if let Directive::Target { if_cond: Some(c), .. } = directive {
                collect_expr(c, inside, set);
            }
            collect_block(body, true, set);
        }
    }
}

fn collect_expr(e: &Expr, inside: bool, set: &mut HashSet<String>) {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Str(_) => {}
        Expr::Var(n) => {
            if inside {
                set.insert(n.clone());
            }
        }
        Expr::Index { array, index } => {
            collect_expr(array, inside, set);
            collect_expr(index, inside, set);
        }
        Expr::Unary { expr, .. } => collect_expr(expr, inside, set),
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, inside, set);
            collect_expr(rhs, inside, set);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_expr(a, inside, set);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Module {
        compile_program(&parse(src).expect("parse"))
    }

    #[test]
    fn straight_line_code_uses_no_cells() {
        let m = compile("fn main() { let x = 1; let y = x + 2; print(y); }");
        let main = &m.chunks[m.main.unwrap()];
        assert!(
            !main.ops.iter().any(|o| matches!(o, Op::NewCell { .. })),
            "no directive references these locals:\n{}",
            m.dump()
        );
    }

    #[test]
    fn directive_captured_local_is_boxed() {
        let m = compile(
            "fn main() { let x = 0; let y = 1; //#omp target virtual(worker)\n { x = 5; } print(y); }",
        );
        let main = &m.chunks[m.main.unwrap()];
        let cells = main
            .ops
            .iter()
            .filter(|o| matches!(o, Op::NewCell { .. }))
            .count();
        assert_eq!(cells, 1, "only `x` is captured:\n{}", m.dump());
    }

    #[test]
    fn closure_chunk_carries_capture_recipe() {
        let m = compile(
            "fn main() { let x = 0; //#omp target virtual(worker)\n { x = 5; } }",
        );
        let main = &m.chunks[m.main.unwrap()];
        let spec = main
            .specs
            .iter()
            .find_map(|s| match s {
                DirectiveSpec::Target { body, .. } => Some(body),
                _ => None,
            })
            .expect("target spec");
        assert_eq!(spec.caps.len(), 1);
        assert_eq!(m.chunks[spec.chunk as usize].captures, 1);
        assert_eq!(m.chunks[spec.chunk as usize].kind, ChunkKind::Closure);
    }

    #[test]
    fn directive_body_is_compiled_twice() {
        // Dispatch path (closure chunk) + inline path (ignore/disabled).
        let m = compile(
            "fn main() { let x = 0; //#omp target virtual(worker)\n { x = 5; } }",
        );
        assert_eq!(m.chunks.len(), 2, "{}", m.dump());
        let main = &m.chunks[m.main.unwrap()];
        assert!(main
            .ops
            .iter()
            .any(|o| matches!(o, Op::JumpIfIgnoring { .. })));
        assert!(main.ops.iter().any(|o| matches!(o, Op::Dispatch { .. })));
    }

    #[test]
    fn forward_and_recursive_calls_resolve() {
        let m = compile(
            "fn main() { print(a(3)); } fn a(n) { if n < 1 { return 0; } return b(n); } fn b(n) { return a(n - 1) + 1; }",
        );
        assert_eq!(m.chunks.len(), 3);
        for c in &m.chunks {
            assert!(c.ops.iter().all(|o| match o {
                Op::Call { chunk, .. } => (*chunk as usize) < m.chunks.len(),
                _ => true,
            }));
        }
    }

    #[test]
    fn undefined_variable_becomes_deferred_fail() {
        let m = compile("fn main() { if false { print(nope); } }");
        let main = &m.chunks[m.main.unwrap()];
        assert!(
            main.ops.iter().any(|o| matches!(o, Op::Fail { .. })),
            "{}",
            m.dump()
        );
    }

    #[test]
    fn small_ints_use_inline_immediates() {
        let m = compile("fn main() { let x = 41 + 1; print(x); }");
        let main = &m.chunks[m.main.unwrap()];
        assert!(main.ops.iter().any(|o| matches!(o, Op::LoadInt { .. })));
        assert!(
            !main.consts.iter().any(|c| matches!(c, Const::Int(_))),
            "small ints should not hit the pool"
        );
    }
}
