//! The PJ register bytecode: ISA, chunks, modules, and a disassembler.
//!
//! Design, in one paragraph: a program lowers to a [`Module`] of flat
//! [`Chunk`]s — one per function, plus one per directive-body closure. A
//! chunk is a `Vec<Op>` over a frame of typed register slots; locals live in
//! registers instead of the interpreter's `HashMap` scope chains. The
//! paper's §III-B *data-context sharing* survives the register file because
//! the compiler's capture analysis boxes exactly those locals that some
//! directive body references: a boxed local's register holds a shared cell
//! (`Arc<Mutex<Value>>`), read/written through [`Op::CellGet`] /
//! [`Op::CellSet`], and dispatching a directive hands the *cells* (never
//! copies) to the closure chunk via its [`ClosureRef`] capture recipe.
//! Everything else — straight-line arithmetic, calls, loops — touches plain
//! value registers with no allocation and no locking.
//!
//! Control flow is absolute: [`Op::Jump`]-family targets index into the
//! chunk's op vector. Calls are register-windowed: the caller materialises
//! arguments in a contiguous block of top-of-frame temporaries and the
//! callee's frame *starts at that block*, so parameters are passed without
//! copying. Directives compile to a [`Op::Dispatch`] op plus an inline copy
//! of the body (see [`crate::compile`] for the layout and why both copies
//! exist).

use pyjama_runtime::directive::TargetProperty;
use pyjama_runtime::Mode;

use crate::ast::{BinOp, LoopSchedule};
use crate::builtins::Builtin;

/// A register index into the current frame.
pub type Reg = u16;

/// A constant-pool entry.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// An integer too wide for [`Op::LoadInt`]'s inline immediate.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (also: interned names and runtime-error messages).
    Str(String),
}

/// How a dispatching frame supplies one captured cell to a closure chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapSrc {
    /// A boxed local of the dispatching frame: the register holds a cell.
    Reg(Reg),
    /// Forwarded from the dispatching frame's own capture vector.
    Cap(u16),
}

/// A closure chunk plus the capture recipe its dispatch site evaluates.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosureRef {
    /// Index of the closure's chunk in the module.
    pub chunk: u16,
    /// One entry per capture slot of that chunk, in slot order.
    pub caps: Vec<CapSrc>,
}

/// The directive payload of a [`Op::Dispatch`] op.
#[derive(Clone, Debug, PartialEq)]
pub enum DirectiveSpec {
    /// `//#omp target …`: dispatch the closure through the runtime.
    Target {
        /// Where the block runs (virtual / device / default).
        target: TargetProperty,
        /// Scheduling mode (wait / nowait / name_as / await).
        mode: Mode,
        /// Register holding the evaluated `if(…)` condition, if any.
        cond: Option<Reg>,
        /// The target-block closure.
        body: ClosureRef,
    },
    /// `//#omp parallel`: fork a team; every member runs the closure.
    Parallel {
        /// Team size (default: machine parallelism).
        num_threads: Option<usize>,
        /// The member closure.
        body: ClosureRef,
    },
    /// `//#omp parallel for`: fork a team over an integer range.
    ParallelFor {
        /// Team size.
        num_threads: Option<usize>,
        /// Loop schedule.
        schedule: LoopSchedule,
        /// Register holding the evaluated (asserted-int) range start.
        start: Reg,
        /// Register holding the evaluated (asserted-int) range end.
        end: Reg,
        /// The loop-body closure; its single parameter is the loop variable.
        body: ClosureRef,
    },
    /// `//#omp critical [(name)]`: run the inline range under the named lock.
    Critical {
        /// Lock name (empty = the anonymous lock).
        name: String,
    },
    /// `//#omp master`: fall through inline on the master (or orphaned).
    Master,
    /// `//#omp single`: exactly one team member runs the closure.
    Single {
        /// The single-block closure.
        body: ClosureRef,
    },
    /// `//#omp task`: asynchronous within the team; inline when orphaned.
    Task {
        /// The task closure.
        body: ClosureRef,
    },
    /// `//#omp sections`: each closure is one section.
    Sections {
        /// One closure per top-level statement of the body.
        sections: Vec<ClosureRef>,
    },
}

/// One bytecode instruction. `dst`/`src`/operand fields index the current
/// frame's registers; jump targets are absolute op indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// `dst = consts[idx]`.
    LoadConst {
        /// Destination register.
        dst: Reg,
        /// Constant-pool index.
        idx: u16,
    },
    /// `dst = v` (small-int fast path, no pool access).
    LoadInt {
        /// Destination register.
        dst: Reg,
        /// The immediate.
        v: i32,
    },
    /// `dst = v`.
    LoadBool {
        /// Destination register.
        dst: Reg,
        /// The immediate.
        v: bool,
    },
    /// `dst = unit`.
    LoadUnit {
        /// Destination register.
        dst: Reg,
    },
    /// `dst = src` (value copy).
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Boxes `reg`'s value into a fresh shared cell, in place. Emitted at
    /// every declaration of a directive-captured local — fresh cell per
    /// execution, matching the interpreter's `declare`.
    NewCell {
        /// The register to box.
        reg: Reg,
    },
    /// `dst = *src` where `src` holds a cell.
    CellGet {
        /// Destination register (plain value).
        dst: Reg,
        /// Register holding the cell.
        src: Reg,
    },
    /// `*dst = src` where `dst` holds a cell.
    CellSet {
        /// Register holding the cell.
        dst: Reg,
        /// Register holding the new value.
        src: Reg,
    },
    /// `dst = *captures[idx]`.
    CapGet {
        /// Destination register.
        dst: Reg,
        /// Capture-slot index.
        idx: u16,
    },
    /// `*captures[idx] = src`.
    CapSet {
        /// Capture-slot index.
        idx: u16,
        /// Register holding the new value.
        src: Reg,
    },
    /// `dst = a <op> b`. Int/float pairs take an inline fast path; every
    /// other combination falls back to the interpreter's shared `binary`.
    Bin {
        /// The operator (never `And`/`Or`; those lower to jumps).
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = a + imm` (int-only; loop-counter increments).
    AddImm {
        /// Destination register.
        dst: Reg,
        /// Operand register (must hold an int).
        a: Reg,
        /// The immediate.
        imm: i32,
    },
    /// `dst = a <op> imm` — fused form of `LoadInt` + `Bin` for an
    /// int-literal right operand; non-int left operands fall back to the
    /// interpreter's `binary`, so semantics (floats, errors) are identical.
    BinImm {
        /// The operator (never `And`/`Or`; those lower to jumps).
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// The immediate right operand.
        imm: i32,
    },
    /// `dst = -src`.
    Neg {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = !src`.
    Not {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `pc = to`.
    Jump {
        /// Target op index.
        to: u32,
    },
    /// `if !cond { pc = to }`; errors unless `cond` holds a bool.
    JumpIfFalse {
        /// Condition register.
        cond: Reg,
        /// Target op index.
        to: u32,
    },
    /// `if cond { pc = to }`; errors unless `cond` holds a bool.
    JumpIfTrue {
        /// Condition register.
        cond: Reg,
        /// Target op index.
        to: u32,
    },
    /// Errors unless `reg` holds an int (loop bounds, indices).
    AssertInt {
        /// The register to check.
        reg: Reg,
    },
    /// `dst = arr[idx]`.
    Index {
        /// Destination register.
        dst: Reg,
        /// Register holding the array.
        arr: Reg,
        /// Register holding the index.
        idx: Reg,
    },
    /// `arr[idx] = val`.
    IndexSet {
        /// Register holding the array.
        arr: Reg,
        /// Register holding the index.
        idx: Reg,
        /// Register holding the new value.
        val: Reg,
    },
    /// Calls a user function chunk. Arguments occupy the contiguous block
    /// `[base, base+argc)`; the callee's frame starts at `base`, so the
    /// arguments *are* its first registers (zero-copy).
    Call {
        /// Callee chunk index.
        chunk: u16,
        /// Destination register for the return value.
        dst: Reg,
        /// First argument register (and callee frame base).
        base: Reg,
        /// Argument count.
        argc: u8,
    },
    /// Calls a builtin with arguments in `[base, base+argc)`.
    CallBuiltin {
        /// The builtin.
        b: Builtin,
        /// Destination register for the result.
        dst: Reg,
        /// First argument register.
        base: Reg,
        /// Argument count.
        argc: u8,
    },
    /// Returns `src` from the current chunk.
    Ret {
        /// The register holding the return value.
        src: Reg,
    },
    /// Returns unit from the current chunk.
    RetUnit,
    /// Raises the runtime error whose message is `consts[msg]`. Lowering
    /// emits this for conditions the interpreter only reports when reached
    /// (undefined variables, bad arities, unknown functions, orphaned
    /// `break`), so dead code stays as silent as it is under the oracle.
    Fail {
        /// Constant-pool index of the message string.
        msg: u16,
    },
    /// Executes `specs[spec]`. On dispatch, control resumes at `skip`; when
    /// the directive runs in place (disabled `if`, orphaned `single`/`task`/
    /// `sections`, `master` on the master thread) control falls through into
    /// the inline body copy at `pc + 1`. `Critical` runs the inline range
    /// `[pc+1, skip)` under its lock.
    Dispatch {
        /// Index into the chunk's spec table.
        spec: u16,
        /// Op index just past the inline body copy.
        skip: u32,
    },
    /// `if ignore_directives { pc = to }` — jumps straight to the inline
    /// body copy, skipping wait-tags, `if(…)` evaluation, and the dispatch.
    JumpIfIgnoring {
        /// Target op index (the inline copy).
        to: u32,
    },
    /// `wait(tag)` against the runtime (no-op when ignoring directives).
    WaitTag {
        /// Constant-pool index of the tag string.
        tag: u16,
    },
    /// Team barrier; errors when orphaned (no-op when ignoring directives).
    Barrier,
    /// Waits for the team's outstanding tasks (no-op when orphaned).
    TaskWait,
}

/// Why a chunk exists — decides top-level flow semantics: `break` outside a
/// loop is a runtime error in a function but silently ends a closure (the
/// interpreter discards a closure's residual `Flow`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChunkKind {
    /// A PJ function (`fn name(…) { … }`).
    #[default]
    Function,
    /// A directive body (target block, team member, task, section, …).
    Closure,
}

/// One compiled code unit: flat ops over a register frame.
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    /// Diagnostic name (`main`, `fib`, `main::target@7`, …).
    pub name: String,
    /// Parameter count; parameters are registers `0..params`.
    pub params: usize,
    /// Frame size in registers (allocation high-water mark).
    pub regs: usize,
    /// Capture-slot count (closure chunks; zero for functions).
    pub captures: usize,
    /// The instructions.
    pub ops: Vec<Op>,
    /// The constant pool.
    pub consts: Vec<Const>,
    /// Directive specs referenced by `Dispatch` ops.
    pub specs: Vec<DirectiveSpec>,
    /// Function or closure.
    pub kind: ChunkKind,
}

/// A compiled program: all chunks, functions first (in declaration order),
/// closure chunks appended as lowering discovers them.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Every chunk; `ClosureRef`/`Call` indices point in here.
    pub chunks: Vec<Chunk>,
    /// Chunk index of `main`, if the program has one.
    pub main: Option<usize>,
}

impl Module {
    /// Disassembles the whole module (the `--dump-bytecode` view).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.chunks.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            c.dump_into(i, &mut out);
        }
        out
    }
}

impl Chunk {
    fn dump_into(&self, index: usize, out: &mut String) {
        use std::fmt::Write;
        let kind = match self.kind {
            ChunkKind::Function => "fn",
            ChunkKind::Closure => "closure",
        };
        let _ = writeln!(
            out,
            ";; chunk {index}: {kind} {} (params={}, regs={}, caps={})",
            self.name, self.params, self.regs, self.captures
        );
        for (pc, op) in self.ops.iter().enumerate() {
            let _ = writeln!(out, "  {pc:03}  {}", self.fmt_op(op));
        }
    }

    fn fmt_const(&self, idx: u16) -> String {
        match self.consts.get(idx as usize) {
            Some(Const::Int(v)) => format!("{v}"),
            Some(Const::Float(v)) => format!("{v}"),
            Some(Const::Str(s)) => format!("{s:?}"),
            None => format!("c{idx}?"),
        }
    }

    fn fmt_caps(caps: &[CapSrc]) -> String {
        let items: Vec<String> = caps
            .iter()
            .map(|c| match c {
                CapSrc::Reg(r) => format!("r{r}"),
                CapSrc::Cap(i) => format!("cap{i}"),
            })
            .collect();
        format!("[{}]", items.join(", "))
    }

    fn fmt_closure(body: &ClosureRef) -> String {
        format!("chunk {} caps={}", body.chunk, Self::fmt_caps(&body.caps))
    }

    fn fmt_spec(&self, idx: u16) -> String {
        match self.specs.get(idx as usize) {
            Some(DirectiveSpec::Target {
                target,
                mode,
                cond,
                body,
            }) => {
                let tgt = match target {
                    TargetProperty::Virtual(n) => format!("virtual({n})"),
                    TargetProperty::Device(n) => format!("device({n})"),
                    TargetProperty::Default => "default".to_string(),
                };
                let cond = match cond {
                    Some(r) => format!(" if=r{r}"),
                    None => String::new(),
                };
                format!("target {tgt} {mode:?}{cond} -> {}", Self::fmt_closure(body))
            }
            Some(DirectiveSpec::Parallel { num_threads, body }) => format!(
                "parallel n={num_threads:?} -> {}",
                Self::fmt_closure(body)
            ),
            Some(DirectiveSpec::ParallelFor {
                num_threads,
                schedule,
                start,
                end,
                body,
            }) => format!(
                "parallel-for n={num_threads:?} {schedule:?} r{start}..r{end} -> {}",
                Self::fmt_closure(body)
            ),
            Some(DirectiveSpec::Critical { name }) => format!("critical({name})"),
            Some(DirectiveSpec::Master) => "master".to_string(),
            Some(DirectiveSpec::Single { body }) => {
                format!("single -> {}", Self::fmt_closure(body))
            }
            Some(DirectiveSpec::Task { body }) => format!("task -> {}", Self::fmt_closure(body)),
            Some(DirectiveSpec::Sections { sections }) => {
                let items: Vec<String> =
                    sections.iter().map(Self::fmt_closure).collect();
                format!("sections -> [{}]", items.join("; "))
            }
            None => format!("spec#{idx}?"),
        }
    }

    fn fmt_op(&self, op: &Op) -> String {
        match *op {
            Op::LoadConst { dst, idx } => {
                format!("LoadConst   r{dst}, {}", self.fmt_const(idx))
            }
            Op::LoadInt { dst, v } => format!("LoadInt     r{dst}, {v}"),
            Op::LoadBool { dst, v } => format!("LoadBool    r{dst}, {v}"),
            Op::LoadUnit { dst } => format!("LoadUnit    r{dst}"),
            Op::Move { dst, src } => format!("Move        r{dst}, r{src}"),
            Op::NewCell { reg } => format!("NewCell     r{reg}"),
            Op::CellGet { dst, src } => format!("CellGet     r{dst}, [r{src}]"),
            Op::CellSet { dst, src } => format!("CellSet     [r{dst}], r{src}"),
            Op::CapGet { dst, idx } => format!("CapGet      r{dst}, cap{idx}"),
            Op::CapSet { idx, src } => format!("CapSet      cap{idx}, r{src}"),
            Op::Bin { op, dst, a, b } => format!("Bin.{op:<7?} r{dst}, r{a}, r{b}"),
            Op::AddImm { dst, a, imm } => format!("AddImm      r{dst}, r{a}, {imm}"),
            Op::BinImm { op, dst, a, imm } => format!("BinImm.{op:<4?} r{dst}, r{a}, {imm}"),
            Op::Neg { dst, src } => format!("Neg         r{dst}, r{src}"),
            Op::Not { dst, src } => format!("Not         r{dst}, r{src}"),
            Op::Jump { to } => format!("Jump        {to:03}"),
            Op::JumpIfFalse { cond, to } => format!("JumpIfFalse r{cond}, {to:03}"),
            Op::JumpIfTrue { cond, to } => format!("JumpIfTrue  r{cond}, {to:03}"),
            Op::AssertInt { reg } => format!("AssertInt   r{reg}"),
            Op::Index { dst, arr, idx } => format!("Index       r{dst}, r{arr}[r{idx}]"),
            Op::IndexSet { arr, idx, val } => format!("IndexSet    r{arr}[r{idx}], r{val}"),
            Op::Call {
                chunk,
                dst,
                base,
                argc,
            } => format!("Call        r{dst} = chunk {chunk}(r{base}..+{argc})"),
            Op::CallBuiltin {
                b,
                dst,
                base,
                argc,
            } => format!("CallBuiltin r{dst} = {}(r{base}..+{argc})", b.name()),
            Op::Ret { src } => format!("Ret         r{src}"),
            Op::RetUnit => "RetUnit".to_string(),
            Op::Fail { msg } => format!("Fail        {}", self.fmt_const(msg)),
            Op::Dispatch { spec, skip } => {
                format!("Dispatch    skip->{skip:03}  ; {}", self.fmt_spec(spec))
            }
            Op::JumpIfIgnoring { to } => format!("JumpIfIgnor {to:03}"),
            Op::WaitTag { tag } => format!("WaitTag     {}", self.fmt_const(tag)),
            Op::Barrier => "Barrier".to_string(),
            Op::TaskWait => "TaskWait".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small_and_copy() {
        // The dispatch loop copies one `Op` out of the chunk per step; keep
        // the ISA compact so that copy stays register-sized.
        assert!(std::mem::size_of::<Op>() <= 16, "{}", std::mem::size_of::<Op>());
        let op = Op::LoadInt { dst: 0, v: 7 };
        let copy = op; // Copy, not move
        assert_eq!(op, copy);
    }

    #[test]
    fn dump_renders_every_op_shape() {
        let chunk = Chunk {
            name: "demo".into(),
            params: 1,
            regs: 4,
            captures: 1,
            ops: vec![
                Op::LoadConst { dst: 0, idx: 0 },
                Op::LoadInt { dst: 1, v: -3 },
                Op::NewCell { reg: 1 },
                Op::CellGet { dst: 2, src: 1 },
                Op::Bin {
                    op: BinOp::Add,
                    dst: 2,
                    a: 2,
                    b: 0,
                },
                Op::Dispatch { spec: 0, skip: 7 },
                Op::CapSet { idx: 0, src: 2 },
                Op::RetUnit,
            ],
            consts: vec![Const::Str("hi".into())],
            specs: vec![DirectiveSpec::Critical { name: "c".into() }],
            kind: ChunkKind::Closure,
        };
        let m = Module {
            chunks: vec![chunk],
            main: None,
        };
        let d = m.dump();
        assert!(d.contains("closure demo"), "{d}");
        assert!(d.contains("LoadConst"), "{d}");
        assert!(d.contains("critical(c)"), "{d}");
        assert!(d.contains("skip->007"), "{d}");
    }
}
