//! The §IV-A source-to-source restructuring.
//!
//! "The compiler will restructure a target block as a runnable TargetRegion
//! class, with its run() function implementing the user code. … The target
//! region instance is then submitted to the Pyjama runtime, which is
//! responsible for dispatching the target code block to the appropriate
//! virtual target."
//!
//! [`transform`] walks a parsed PJ program, extracts every `target` block
//! into a [`RegionClass`] (numbered in encounter order, exactly like
//! `TargetRegion_0`, `TargetRegion_1` in the paper's example) and replaces
//! the directive with the generated instantiation + `invokeTargetBlock`
//! call. [`TransformedProgram::to_java_like_source`] renders the result in
//! the Java-ish shape of the paper's Figure in §IV-A, so tests can compare
//! against the published output.

use pyjama_runtime::directive::TargetProperty;
use pyjama_runtime::Mode;

use crate::ast::*;

/// One generated `TargetRegion_k` runnable.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionClass {
    /// Index `k` (encounter order across the whole program).
    pub index: usize,
    /// The virtual target the region is submitted to.
    pub target: String,
    /// The scheduling mode at the submission site.
    pub mode: Mode,
    /// The region body, already transformed (nested targets replaced).
    pub body: Block,
}

impl RegionClass {
    /// The generated class name.
    pub fn class_name(&self) -> String {
        format!("TargetRegion_{}", self.index)
    }

    /// The generated instance variable name (paper: `_omp_tr_0`).
    pub fn instance_name(&self) -> String {
        format!("_omp_tr_{}", self.index)
    }
}

/// The result of restructuring a program.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformedProgram {
    /// Generated region classes, by index.
    pub regions: Vec<RegionClass>,
    /// The program with every target directive replaced by submission code.
    pub rewritten: Program,
}

/// A synthetic statement the transformer inserts: kept as an `Expr::Call`
/// to `PjRuntime.invokeTargetBlock` in the rewritten AST so the pretty
/// printer can render it exactly; the call is never interpreted.
fn invoke_stmt(region: &RegionClass, line: usize) -> Vec<Stmt> {
    let async_arg = match &region.mode {
        Mode::Wait => "Async.wait",
        Mode::NoWait => "Async.nowait",
        Mode::NameAs(_) => "Async.name_as",
        Mode::Await => "Async.await",
    };
    vec![
        Stmt::Let {
            name: region.instance_name(),
            value: Expr::Call {
                name: format!("new {}", region.class_name()),
                args: vec![],
                line,
            },
            line,
        },
        Stmt::Expr(Expr::Call {
            name: "PjRuntime.invokeTargetBlock".to_string(),
            args: vec![
                Expr::Str(region.target.clone()),
                Expr::Var(region.instance_name()),
                Expr::Var(async_arg.to_string()),
            ],
            line,
        }),
    ]
}

/// Restructures every `target` block in `program`.
pub fn transform(program: &Program) -> TransformedProgram {
    let mut t = Transformer {
        regions: Vec::new(),
    };
    let rewritten = Program {
        functions: program
            .functions
            .iter()
            .map(|f| Function {
                name: f.name.clone(),
                params: f.params.clone(),
                body: t.rewrite_block(&f.body),
                line: f.line,
            })
            .collect(),
    };
    TransformedProgram {
        regions: t.regions,
        rewritten,
    }
}

struct Transformer {
    regions: Vec<RegionClass>,
}

impl Transformer {
    fn rewrite_block(&mut self, block: &Block) -> Block {
        let mut stmts = Vec::new();
        for stmt in &block.stmts {
            self.rewrite_stmt(stmt, &mut stmts);
        }
        Block { stmts }
    }

    fn rewrite_stmt(&mut self, stmt: &Stmt, out: &mut Vec<Stmt>) {
        match stmt {
            Stmt::Directive {
                directive: Directive::Target { directive: d, .. },
                body,
                line,
            } => {
                // Reserve the index *before* descending so outer regions get
                // smaller numbers (paper: TargetRegion_0 encloses
                // TargetRegion_1).
                let index = self.regions.len();
                self.regions.push(RegionClass {
                    index,
                    target: match &d.target {
                        TargetProperty::Virtual(name) => name.clone(),
                        TargetProperty::Device(n) => format!("device:{n}"),
                        TargetProperty::Default => "default".to_string(),
                    },
                    mode: d.mode.clone(),
                    body: Block::default(), // placeholder, filled below
                });
                let rewritten_body = self.rewrite_block(body);
                self.regions[index].body = rewritten_body;
                let region = self.regions[index].clone();
                out.extend(invoke_stmt(&region, *line));
            }
            Stmt::Directive {
                directive,
                body,
                line,
            } => out.push(Stmt::Directive {
                directive: directive.clone(),
                body: self.rewrite_block(body),
                line: *line,
            }),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_block: self.rewrite_block(then_block),
                else_block: else_block.as_ref().map(|b| self.rewrite_block(b)),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: self.rewrite_block(body),
            }),
            Stmt::For {
                var,
                start,
                end,
                body,
            } => out.push(Stmt::For {
                var: var.clone(),
                start: start.clone(),
                end: end.clone(),
                body: self.rewrite_block(body),
            }),
            Stmt::Block(b) => out.push(Stmt::Block(self.rewrite_block(b))),
            other => out.push(other.clone()),
        }
    }
}

impl TransformedProgram {
    /// Renders the transformation in the Java-like shape of the paper's
    /// §IV-A example: first the generated `TargetRegion_k` classes, then
    /// the rewritten functions.
    pub fn to_java_like_source(&self) -> String {
        let mut s = String::new();
        for r in &self.regions {
            s.push_str(&format!("class {}() implements Runnable {{\n", r.class_name()));
            s.push_str("    public void run() {\n");
            print_block(&r.body, 2, &mut s);
            s.push_str("    }\n}\n\n");
        }
        for f in &self.rewritten.functions {
            s.push_str(&format!("void {}({}) {{\n", f.name, f.params.join(", ")));
            print_block(&f.body, 1, &mut s);
            s.push_str("}\n\n");
        }
        s
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    for stmt in &block.stmts {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    match stmt {
        Stmt::Let { name, value, .. } => {
            indent(level, out);
            // Generated instantiation statements render Java-style.
            if name.starts_with("_omp_tr_") {
                let class = match value {
                    Expr::Call { name, .. } => name.trim_start_matches("new ").to_string(),
                    _ => "TargetRegion".to_string(),
                };
                out.push_str(&format!("TargetRegion {name} = new {class}();\n"));
            } else {
                out.push_str(&format!("let {name} = {};\n", print_expr(value)));
            }
        }
        Stmt::Assign { name, value, .. } => {
            indent(level, out);
            out.push_str(&format!("{name} = {};\n", print_expr(value)));
        }
        Stmt::IndexAssign {
            name,
            index,
            value,
            ..
        } => {
            indent(level, out);
            out.push_str(&format!(
                "{name}[{}] = {};\n",
                print_expr(index),
                print_expr(value)
            ));
        }
        Stmt::Expr(e) => {
            indent(level, out);
            out.push_str(&format!("{};\n", print_expr(e)));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            indent(level, out);
            out.push_str(&format!("if ({}) {{\n", print_expr(cond)));
            print_block(then_block, level + 1, out);
            indent(level, out);
            out.push('}');
            if let Some(eb) = else_block {
                out.push_str(" else {\n");
                print_block(eb, level + 1, out);
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            indent(level, out);
            out.push_str(&format!("while ({}) {{\n", print_expr(cond)));
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            indent(level, out);
            out.push_str(&format!(
                "for ({var} in {}..{}) {{\n",
                print_expr(start),
                print_expr(end)
            ));
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Return(e) => {
            indent(level, out);
            match e {
                Some(e) => out.push_str(&format!("return {};\n", print_expr(e))),
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break => {
            indent(level, out);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(level, out);
            out.push_str("continue;\n");
        }
        Stmt::Block(b) => {
            indent(level, out);
            out.push_str("{\n");
            print_block(b, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Directive {
            directive, body, ..
        } => {
            indent(level, out);
            out.push_str(&format!("//#omp {}\n", directive_text(directive)));
            indent(level, out);
            out.push_str("{\n");
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
    }
}

fn directive_text(d: &Directive) -> String {
    match d {
        Directive::Target { directive, .. } => directive.to_directive_text(),
        Directive::WaitTag(t) => format!("wait({t})"),
        Directive::Parallel { num_threads } => match num_threads {
            Some(n) => format!("parallel num_threads({n})"),
            None => "parallel".to_string(),
        },
        Directive::ParallelFor {
            num_threads,
            schedule,
        } => {
            let mut s = "parallel for".to_string();
            if let Some(n) = num_threads {
                s.push_str(&format!(" num_threads({n})"));
            }
            match schedule {
                LoopSchedule::Static => {}
                LoopSchedule::Dynamic(c) => s.push_str(&format!(" schedule(dynamic, {c})")),
                LoopSchedule::Guided(c) => s.push_str(&format!(" schedule(guided, {c})")),
            }
            s
        }
        Directive::Critical(name) if name.is_empty() => "critical".to_string(),
        Directive::Critical(name) => format!("critical({name})"),
        Directive::Barrier => "barrier".to_string(),
        Directive::Master => "master".to_string(),
        Directive::Single => "single".to_string(),
        Directive::Task => "task".to_string(),
        Directive::TaskWait => "taskwait".to_string(),
        Directive::Sections => "sections".to_string(),
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => format!("{v}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Var(v) => v.clone(),
        Expr::Index { array, index } => format!("{}[{}]", print_expr(array), print_expr(index)),
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", print_expr(expr))
        }
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {sym} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// The paper's §IV-A compilation example, in PJ.
    const PAPER_EXAMPLE: &str = r#"
fn main() {
    setText("Start Processing Task!");
    //#omp target virtual(worker) await
    {
        compute_half1();
        //#omp target virtual(edt) nowait
        {
            setText("Task half finished");
        }
        compute_half2();
    }
    setText("Task finished");
}
"#;

    #[test]
    fn paper_example_generates_two_regions() {
        let program = parse(PAPER_EXAMPLE).unwrap();
        let t = transform(&program);
        assert_eq!(t.regions.len(), 2);

        // Outer region: worker + await.
        assert_eq!(t.regions[0].target, "worker");
        assert_eq!(t.regions[0].mode, Mode::Await);
        assert_eq!(t.regions[0].class_name(), "TargetRegion_0");

        // Inner region: edt + nowait, nested inside region 0's body.
        assert_eq!(t.regions[1].target, "edt");
        assert_eq!(t.regions[1].mode, Mode::NoWait);
        assert_eq!(t.regions[1].instance_name(), "_omp_tr_1");
    }

    #[test]
    fn outer_region_body_contains_inner_invocation() {
        let program = parse(PAPER_EXAMPLE).unwrap();
        let t = transform(&program);
        // Region 0's body: compute_half1(); <instantiate+invoke region 1>;
        // compute_half2();
        let body = &t.regions[0].body;
        assert_eq!(body.stmts.len(), 4, "{body:#?}");
        assert!(matches!(&body.stmts[0], Stmt::Expr(Expr::Call { name, .. }) if name == "compute_half1"));
        assert!(matches!(&body.stmts[1], Stmt::Let { name, .. } if name == "_omp_tr_1"));
        assert!(
            matches!(&body.stmts[2], Stmt::Expr(Expr::Call { name, .. }) if name == "PjRuntime.invokeTargetBlock")
        );
        assert!(matches!(&body.stmts[3], Stmt::Expr(Expr::Call { name, .. }) if name == "compute_half2"));
    }

    #[test]
    fn main_is_rewritten_to_submission_site() {
        let program = parse(PAPER_EXAMPLE).unwrap();
        let t = transform(&program);
        let main = t.rewritten.function("main").unwrap();
        // setText; let _omp_tr_0; invoke; setText
        assert_eq!(main.body.stmts.len(), 4);
        assert!(matches!(&main.body.stmts[1], Stmt::Let { name, .. } if name == "_omp_tr_0"));
    }

    #[test]
    fn java_like_output_matches_paper_shape() {
        let program = parse(PAPER_EXAMPLE).unwrap();
        let t = transform(&program);
        let src = t.to_java_like_source();
        // The structural landmarks of the paper's generated code:
        assert!(src.contains("class TargetRegion_0() implements Runnable"), "{src}");
        assert!(src.contains("class TargetRegion_1() implements Runnable"), "{src}");
        assert!(src.contains("public void run()"), "{src}");
        assert!(
            src.contains(r#"PjRuntime.invokeTargetBlock("worker", _omp_tr_0, Async.await);"#),
            "{src}"
        );
        assert!(
            src.contains(r#"PjRuntime.invokeTargetBlock("edt", _omp_tr_1, Async.nowait);"#),
            "{src}"
        );
        assert!(src.contains("TargetRegion _omp_tr_0 = new TargetRegion_0();"), "{src}");
    }

    #[test]
    fn program_without_targets_is_unchanged() {
        let src = "fn main() { let x = 1; if x > 0 { x = 2; } }";
        let program = parse(src).unwrap();
        let t = transform(&program);
        assert!(t.regions.is_empty());
        assert_eq!(t.rewritten, program);
    }

    #[test]
    fn non_target_directives_survive_rewriting() {
        let src = "fn main() { //#omp parallel num_threads(2)\n { work(); } }";
        let program = parse(src).unwrap();
        let t = transform(&program);
        assert!(t.regions.is_empty());
        assert!(matches!(
            &t.rewritten.function("main").unwrap().body.stmts[0],
            Stmt::Directive {
                directive: Directive::Parallel { .. },
                ..
            }
        ));
    }

    #[test]
    fn targets_inside_control_flow_are_extracted() {
        let src = r#"
fn main() {
    for i in 0..3 {
        //#omp target virtual(worker) nowait
        { work(i); }
    }
    if true {
        //#omp target virtual(edt)
        { update(); }
    }
}
"#;
        let program = parse(src).unwrap();
        let t = transform(&program);
        assert_eq!(t.regions.len(), 2);
        assert_eq!(t.regions[0].target, "worker");
        assert_eq!(t.regions[1].target, "edt");
    }

    #[test]
    fn region_numbering_is_encounter_order() {
        let src = r#"
fn a() { //#omp target virtual(w1)
 { x(); } }
fn b() { //#omp target virtual(w2)
 { y(); } }
"#;
        let program = parse(src).unwrap();
        let t = transform(&program);
        assert_eq!(t.regions[0].target, "w1");
        assert_eq!(t.regions[1].target, "w2");
    }
}
