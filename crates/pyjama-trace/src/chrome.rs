//! Chrome `about://tracing` / Perfetto JSON export.
//!
//! The exporter writes one event object per line inside `traceEvents`,
//! which keeps the output greppable and lets the validator and tests parse
//! it without a full JSON library:
//!
//! * paired stages (`region_run` begin/end, `event_dispatch`, barrier and
//!   worker park/wake) become `"ph":"X"` complete slices with a real
//!   duration;
//! * unpaired lifecycle points become 1 µs `"X"` slivers (Perfetto renders
//!   zero-duration slices poorly, and a sliver gives flow arrows a slice
//!   to anchor to);
//! * each non-zero [`TraceId`](crate::TraceId) with at least two events
//!   becomes a flow: `"ph":"s"` at its first event, `"ph":"t"` steps, and
//!   a closing `"ph":"f"` (`"bp":"e"`) at its last — the arrows you follow
//!   in the viewer to walk one request across threads.
//!
//! Timestamps are microseconds (Chrome's unit) with nanosecond precision
//! kept as fractional digits.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::collect::Trace;
use crate::event::{arg as argv, Stage, TraceEvent};

/// Sliver width, in ns, for point events (1 µs).
const POINT_DUR_NS: u64 = 1_000;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Decorated slice name: provenance/outcome folded into the label so the
/// viewer shows `region_dequeued(steal)` at a glance.
fn slice_name(ev: &TraceEvent) -> String {
    match ev.stage {
        Stage::RegionDequeued => {
            format!("region_dequeued({})", argv::provenance_name(ev.arg))
        }
        Stage::RegionPosted => {
            let how = match ev.arg {
                argv::POST_INJECTOR => "injector",
                argv::POST_MEMBER => "member",
                argv::POST_EDT => "edt",
                _ => "?",
            };
            format!("region_posted({how})")
        }
        Stage::ConnReady if ev.arg == argv::READY_TIMEOUT => {
            "conn_ready(timeout)".to_string()
        }
        Stage::ReactorReady => {
            let why = match ev.arg {
                argv::READY_READABLE => "readable",
                argv::READY_TIMEOUT => "timeout",
                argv::READY_WRITABLE => "writable",
                _ => "?",
            };
            format!("reactor_ready({why})")
        }
        Stage::ReactorRearm => {
            let interest = match ev.arg {
                argv::REARM_READ => "read",
                argv::REARM_WRITE => "write",
                _ => "?",
            };
            format!("reactor_rearm({interest})")
        }
        Stage::ConfigPublish => format!("config_publish(gen {})", ev.arg),
        Stage::AdmissionShed => format!("admission_shed(depth {})", ev.arg),
        s => s.name().to_string(),
    }
}

struct ChromeEvent {
    line: String,
}

fn complete_event(tid: u32, ev: &TraceEvent, dur_ns: u64) -> ChromeEvent {
    let name = slice_name(ev);
    ChromeEvent {
        line: format!(
            "{{\"name\":\"{}\",\"cat\":\"pyjama\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"trace_id\":{},\"arg\":{}}}}}",
            esc(&name),
            tid,
            us(ev.ts_ns),
            us(dur_ns.max(POINT_DUR_NS)),
            ev.id.raw(),
            ev.arg
        ),
    }
}

fn flow_event(ph: char, id: u64, tid: u32, ts_ns: u64) -> ChromeEvent {
    // Flow timestamps are nudged inside the 1 µs anchor sliver so viewers
    // bind the arrow to the slice that starts at the same instant.
    let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
    ChromeEvent {
        line: format!(
            "{{\"name\":\"flow\",\"cat\":\"pyjama\",\"ph\":\"{}\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{}{}}}",
            ph,
            id,
            tid,
            us(ts_ns + POINT_DUR_NS / 2),
            bp
        ),
    }
}

fn thread_name_event(tid: u32, label: &str) -> ChromeEvent {
    ChromeEvent {
        line: format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            esc(label)
        ),
    }
}

impl Trace {
    /// Serializes the whole trace to Chrome trace JSON (one event object
    /// per line). Load the result in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut out: Vec<ChromeEvent> = Vec::with_capacity(self.len() + 64);

        for th in &self.threads {
            out.push(thread_name_event(th.tid, &th.label));
        }

        // Duration slices: pair opening stages with their closer on the
        // same thread and the same flow id; everything else is a sliver.
        for th in &self.threads {
            // A paired slice is finished (and pushed) at its *closer*, so a
            // slice whose body emitted events lands after them with an
            // earlier begin timestamp. Buffer per thread and sort by begin
            // ts: viewers nest slices by timestamp anyway, and the
            // validator's per-thread monotonicity check reads file order.
            let mut slices: Vec<(u64, ChromeEvent)> = Vec::with_capacity(th.events.len());
            // (stage-that-closes, id) -> index into `open`
            let mut open: Vec<(Stage, u64, &TraceEvent)> = Vec::new();
            for ev in &th.events {
                if ev.stage.is_closer() {
                    if let Some(pos) = open
                        .iter()
                        .rposition(|(close, id, _)| *close == ev.stage && *id == ev.id.raw())
                    {
                        let (_, _, begin) = open.remove(pos);
                        let dur = ev.ts_ns.saturating_sub(begin.ts_ns);
                        slices.push((begin.ts_ns, complete_event(th.tid, begin, dur)));
                        continue;
                    }
                    // Closer without an opener (opener dropped): sliver.
                    slices.push((ev.ts_ns, complete_event(th.tid, ev, 0)));
                } else if let Some(close) = ev.stage.closes_with() {
                    open.push((close, ev.id.raw(), ev));
                } else {
                    slices.push((ev.ts_ns, complete_event(th.tid, ev, 0)));
                }
            }
            // Intervals still open at collection time: sliver at the begin.
            for (_, _, begin) in open {
                slices.push((begin.ts_ns, complete_event(th.tid, begin, 0)));
            }
            slices.sort_by_key(|(ts, _)| *ts);
            out.extend(slices.into_iter().map(|(_, ev)| ev));
        }

        // Flow arrows along every multi-event trace id.
        for id in self.ids() {
            let chain = self.events_for(id);
            if chain.len() < 2 {
                continue;
            }
            let last = chain.len() - 1;
            for (i, (tid, ev)) in chain.iter().enumerate() {
                let ph = if i == 0 {
                    's'
                } else if i == last {
                    'f'
                } else {
                    't'
                };
                out.push(flow_event(ph, id.raw(), *tid, ev.ts_ns));
            }
        }

        let mut json = String::with_capacity(out.len() * 96 + 64);
        json.push_str("{\"traceEvents\":[\n");
        for (i, ev) in out.iter().enumerate() {
            json.push_str(&ev.line);
            if i + 1 < out.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        json
    }

    /// Writes [`Trace::to_chrome_json`] to `path`, creating parent
    /// directories as needed.
    pub fn write_chrome(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{ThreadTrace, Trace};
    use crate::event::{Stage, TraceEvent};
    use crate::id::TraceId;

    fn ev(ts: u64, id: u64, stage: Stage, arg: u32) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            id: TraceId::from_raw(id),
            stage,
            arg,
        }
    }

    fn two_thread_trace() -> Trace {
        Trace {
            threads: vec![
                ThreadTrace {
                    tid: 1,
                    label: "poster".into(),
                    events: vec![ev(1_000, 7, Stage::RegionPosted, argv::POST_INJECTOR)],
                    dropped: 0,
                },
                ThreadTrace {
                    tid: 2,
                    label: "worker-0".into(),
                    events: vec![
                        ev(2_000, 7, Stage::RegionDequeued, argv::DEQ_STEAL),
                        ev(3_000, 7, Stage::RegionRunBegin, 0),
                        ev(9_000, 7, Stage::RegionRunEnd, argv::END_OK),
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn export_contains_flow_start_and_finish() {
        let json = two_thread_trace().to_chrome_json();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("region_dequeued(steal)"));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn run_begin_end_become_one_duration_slice() {
        let json = two_thread_trace().to_chrome_json();
        // 3_000ns..9_000ns => a 6 µs slice starting at ts 3.000
        assert!(json.contains("\"name\":\"region_run\""));
        assert!(json.contains("\"ts\":3.000,\"dur\":6.000"), "{json}");
        assert!(
            !json.contains("region_run_end"),
            "closer consumed by pairing: {json}"
        );
    }

    #[test]
    fn export_is_valid_per_own_validator() {
        let json = two_thread_trace().to_chrome_json();
        let summary = crate::validate::validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.flows, 1);
        assert!(summary.events >= 3);
        assert_eq!(summary.threads, 2);
    }

    #[test]
    fn escapes_hostile_thread_labels() {
        let t = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                label: "we\"ird\\name\n".into(),
                events: vec![ev(10, 0, Stage::WorkerPark, 0)],
                dropped: 0,
            }],
        };
        let json = t.to_chrome_json();
        assert!(json.contains("we\\\"ird\\\\name\\n"));
    }
}
