//! The collector: snapshots every thread ring into an owned [`Trace`].

use crate::event::TraceEvent;
use crate::id::TraceId;
use crate::ring;

/// All events currently held by one thread's ring.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Small dense thread id assigned at first emit (also the Chrome `tid`).
    pub tid: u32,
    /// The OS thread's name at registration time.
    pub label: String,
    /// Events in recording order (timestamps are monotone within a thread).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (drop-oldest) or a `clear()`.
    pub dropped: u64,
}

/// An owned snapshot of every registered ring. Collection does not consume
/// the rings; call [`crate::clear`] to start a fresh window.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub threads: Vec<ThreadTrace>,
}

/// Snapshots all per-thread rings. Safe to call while tracing is still
/// enabled — events lapped mid-copy are discarded, never torn.
pub fn collect() -> Trace {
    let mut threads: Vec<ThreadTrace> = ring::drain_all()
        .into_iter()
        .map(|(tid, label, events, dropped)| ThreadTrace {
            tid,
            label,
            events,
            dropped,
        })
        .collect();
    threads.sort_by_key(|t| t.tid);
    Trace { threads }
}

impl Trace {
    /// Total recorded events across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True when no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to overflow across all threads.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Iterates `(tid, &event)` over every thread in registration order.
    pub fn iter_events(&self) -> impl Iterator<Item = (u32, &TraceEvent)> {
        self.threads
            .iter()
            .flat_map(|t| t.events.iter().map(move |e| (t.tid, e)))
    }

    /// All events belonging to `id`, across threads, sorted by timestamp
    /// (ties broken by tid so the order is deterministic).
    pub fn events_for(&self, id: TraceId) -> Vec<(u32, TraceEvent)> {
        let mut out: Vec<(u32, TraceEvent)> = self
            .iter_events()
            .filter(|(_, e)| e.id == id)
            .map(|(tid, e)| (tid, *e))
            .collect();
        out.sort_by_key(|(tid, e)| (e.ts_ns, *tid));
        out
    }

    /// A copy of this trace keeping only events stamped at or after
    /// `start_ns` (nanoseconds on the trace-epoch clock, cf.
    /// [`crate::now_ns`]). Windows one benchmark cell out of a longer
    /// recording without clearing the rings.
    pub fn after(&self, start_ns: u64) -> Trace {
        Trace {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadTrace {
                    tid: t.tid,
                    label: t.label.clone(),
                    events: t
                        .events
                        .iter()
                        .copied()
                        .filter(|e| e.ts_ns >= start_ns)
                        .collect(),
                    dropped: t.dropped,
                })
                .collect(),
        }
    }

    /// Every distinct non-zero flow id present, ascending.
    pub fn ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self
            .iter_events()
            .filter(|(_, e)| e.id.is_some())
            .map(|(_, e)| e.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::TraceId;

    #[test]
    fn events_for_sorts_across_threads() {
        let _g = crate::test_lock();
        crate::enable();
        crate::clear();
        let id = TraceId::mint();
        crate::emit(id, Stage::RegionPosted, 0);
        let id2 = id;
        std::thread::spawn(move || {
            crate::emit(id2, Stage::RegionDequeued, 1);
            crate::emit(id2, Stage::RegionRunBegin, 0);
        })
        .join()
        .unwrap();
        crate::disable();
        let t = collect();
        let chain = t.events_for(id);
        assert_eq!(chain.len(), 3);
        assert!(chain.windows(2).all(|w| w[0].1.ts_ns <= w[1].1.ts_ns));
        assert!(t.ids().contains(&id));
    }
}
