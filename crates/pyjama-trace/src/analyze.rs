//! In-process trace analysis: per-stage latency histograms and the
//! critical path of one flow.
//!
//! Histograms reuse [`pyjama_metrics::Histogram`] so stage latencies print
//! and merge exactly like the rest of the metrics stack.

use pyjama_metrics::Histogram;

use crate::collect::Trace;
use crate::event::Stage;
use crate::id::TraceId;

/// One hop of a flow's critical path.
#[derive(Clone, Copy, Debug)]
pub struct PathStep {
    /// Stage reached.
    pub stage: Stage,
    /// Stage operand (provenance, outcome, …).
    pub arg: u32,
    /// Thread the event was recorded on.
    pub tid: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Nanoseconds spent getting here from the previous step (0 for the
    /// first step).
    pub delta_ns: u64,
}

/// The ordered hops of one flow, with per-hop latencies.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    pub id: TraceId,
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// End-to-end nanoseconds from the first to the last event.
    pub fn total_ns(&self) -> u64 {
        match (self.steps.first(), self.steps.last()) {
            (Some(a), Some(b)) => b.ts_ns.saturating_sub(a.ts_ns),
            _ => 0,
        }
    }

    /// The hop that took the longest — the critical segment. Returns the
    /// step *reached* by that hop.
    pub fn longest(&self) -> Option<&PathStep> {
        self.steps.iter().max_by_key(|s| s.delta_ns)
    }

    /// Human-readable rendering (one hop per line with +delta annotations).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path of trace {} ({} steps, {:.3} ms total):",
            self.id,
            self.steps.len(),
            self.total_ns() as f64 / 1e6
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "  +{:>10.3} µs  tid {:>3}  {} (arg {})",
                s.delta_ns as f64 / 1e3,
                s.tid,
                s.stage.name(),
                s.arg
            );
        }
        out
    }
}

impl Trace {
    /// Latency histogram (ns) from each `from` event to the next `to`
    /// event *of the same flow id*. A flow may cycle through the pair many
    /// times (an HTTP connection posts one region per request); every
    /// completed cycle is one sample.
    pub fn stage_delta(&self, from: Stage, to: Stage) -> Histogram {
        let mut h = Histogram::new();
        for id in self.ids() {
            let mut pending: Option<u64> = None;
            for (_, ev) in self.events_for(id) {
                if ev.stage == from {
                    pending = Some(ev.ts_ns);
                } else if ev.stage == to {
                    if let Some(start) = pending.take() {
                        h.record(ev.ts_ns.saturating_sub(start));
                    }
                }
            }
        }
        h
    }

    /// Queue delay: region posted → region run start. The headline number
    /// the scheduler PRs care about.
    pub fn queue_delay(&self) -> Histogram {
        self.stage_delta(Stage::RegionPosted, Stage::RegionRunBegin)
    }

    /// Handler run time: region run begin → end.
    pub fn run_time(&self) -> Histogram {
        self.stage_delta(Stage::RegionRunBegin, Stage::RegionRunEnd)
    }

    /// The ordered hops of flow `id` with inter-hop latencies.
    pub fn critical_path(&self, id: TraceId) -> CriticalPath {
        let chain = self.events_for(id);
        let mut steps = Vec::with_capacity(chain.len());
        let mut prev_ts: Option<u64> = None;
        for (tid, ev) in chain {
            steps.push(PathStep {
                stage: ev.stage,
                arg: ev.arg,
                tid,
                ts_ns: ev.ts_ns,
                delta_ns: prev_ts.map_or(0, |p| ev.ts_ns.saturating_sub(p)),
            });
            prev_ts = Some(ev.ts_ns);
        }
        CriticalPath { id, steps }
    }

    /// The flow with the largest end-to-end latency (useful for "what was
    /// the slowest request in this run?").
    pub fn slowest_flow(&self) -> Option<CriticalPath> {
        self.ids()
            .into_iter()
            .map(|id| self.critical_path(id))
            .max_by_key(|cp| cp.total_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{ThreadTrace, Trace};
    use crate::event::{arg as argv, TraceEvent};

    fn ev(ts: u64, id: u64, stage: Stage, arg: u32) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            id: TraceId::from_raw(id),
            stage,
            arg,
        }
    }

    fn sample() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                label: "w".into(),
                events: vec![
                    // flow 1: two post→run cycles (10µs then 30µs delay)
                    ev(0, 1, Stage::RegionPosted, argv::POST_INJECTOR),
                    ev(10_000, 1, Stage::RegionRunBegin, 0),
                    ev(15_000, 1, Stage::RegionRunEnd, argv::END_OK),
                    ev(20_000, 1, Stage::RegionPosted, argv::POST_INJECTOR),
                    ev(50_000, 1, Stage::RegionRunBegin, 0),
                    ev(55_000, 1, Stage::RegionRunEnd, argv::END_OK),
                    // flow 2: single 2µs cycle
                    ev(60_000, 2, Stage::RegionPosted, argv::POST_MEMBER),
                    ev(62_000, 2, Stage::RegionRunBegin, 0),
                ],
                dropped: 0,
            }],
        }
    }

    #[test]
    fn stage_delta_counts_every_cycle() {
        let t = sample();
        let h = t.queue_delay();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 2_000);
        assert_eq!(h.max(), 30_000);
    }

    #[test]
    fn run_time_pairs_begin_end() {
        let h = sample().run_time();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 5_000);
    }

    #[test]
    fn critical_path_orders_and_deltas() {
        let t = sample();
        let cp = t.critical_path(TraceId::from_raw(1));
        assert_eq!(cp.steps.len(), 6);
        assert_eq!(cp.total_ns(), 55_000);
        assert_eq!(cp.steps[0].delta_ns, 0);
        assert_eq!(cp.longest().unwrap().delta_ns, 30_000);
        assert!(cp.render().contains("region_run"));
    }

    #[test]
    fn slowest_flow_picks_the_long_one() {
        let t = sample();
        assert_eq!(t.slowest_flow().unwrap().id, TraceId::from_raw(1));
    }
}
