//! Well-formedness checks for exported Chrome trace JSON.
//!
//! Used by the CI smoke step (`trace_check` binary) and the root
//! `trace_pipeline` integration test. The checks enforced:
//!
//! 1. the file parses as a `{"traceEvents": [...]}` document;
//! 2. every flow `id` that starts (`"ph":"s"`) also finishes (`"ph":"f"`),
//!    and vice versa — no dangling arrows;
//! 3. within each thread (`tid`), slice timestamps are monotone
//!    non-decreasing in file order (ring order == time order per thread).
//!
//! The parser handles the JSON subset our exporter produces (flat objects,
//! string/number values, one level of nested `args`); it deliberately does
//! not try to be a general JSON library — the repo has no serde and the
//! exporter is the only producer.

use std::collections::HashMap;

/// One parsed trace event — only the fields the checks need.
#[derive(Clone, Debug, Default)]
pub struct ParsedEvent {
    pub ph: String,
    pub name: String,
    pub tid: Option<i64>,
    pub ts: Option<f64>,
    pub dur: Option<f64>,
    pub id: Option<u64>,
    /// `args.trace_id`, when present.
    pub trace_id: Option<u64>,
    /// Decoded `arg` operand from `args`, when present.
    pub arg: Option<u64>,
}

/// Aggregate numbers from a successful validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Slice/instant events (`ph` of `X`, `B`, `E`, `i`).
    pub events: usize,
    /// Distinct flow ids with both a start and a finish.
    pub flows: usize,
    /// Distinct `tid`s seen on slice events.
    pub threads: usize,
}

/// Parses `json` and runs the well-formedness checks. Returns a
/// [`Summary`] or a message describing the first violation.
pub fn validate_chrome_trace(json: &str) -> Result<Summary, String> {
    let events = parse_trace_events(json)?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    // Check 2: flow begin/end matching.
    let mut starts: HashMap<u64, usize> = HashMap::new();
    let mut finishes: HashMap<u64, usize> = HashMap::new();
    for ev in &events {
        match ev.ph.as_str() {
            "s" => {
                let id = ev.id.ok_or("flow start without id")?;
                *starts.entry(id).or_default() += 1;
            }
            "f" => {
                let id = ev.id.ok_or("flow finish without id")?;
                *finishes.entry(id).or_default() += 1;
            }
            _ => {}
        }
    }
    for (id, n) in &starts {
        let m = finishes.get(id).copied().unwrap_or(0);
        if *n != m {
            return Err(format!("flow id {id}: {n} start(s) but {m} finish(es)"));
        }
    }
    for id in finishes.keys() {
        if !starts.contains_key(id) {
            return Err(format!("flow id {id}: finish without start"));
        }
    }

    // Check 3: per-thread monotone timestamps over slice events.
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut slice_events = 0usize;
    for ev in &events {
        if !matches!(ev.ph.as_str(), "X" | "B" | "E" | "i") {
            continue;
        }
        slice_events += 1;
        let tid = ev.tid.ok_or_else(|| format!("{} event without tid", ev.ph))?;
        let ts = ev.ts.ok_or_else(|| format!("{} event without ts", ev.ph))?;
        if let Some(prev) = last_ts.get(&tid) {
            if ts < *prev {
                return Err(format!(
                    "tid {tid}: timestamp went backwards ({ts} after {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
    }

    Ok(Summary {
        events: slice_events,
        flows: starts.len(),
        threads: last_ts.len(),
    })
}

/// Extracts the event objects of a `{"traceEvents": [...]}` document.
pub fn parse_trace_events(json: &str) -> Result<Vec<ParsedEvent>, String> {
    let start = json
        .find("\"traceEvents\"")
        .ok_or("no traceEvents key")?;
    let rest = &json[start..];
    let bracket = rest.find('[').ok_or("traceEvents is not an array")?;
    let body = &rest[bracket + 1..];

    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    for (i, c) in body.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or("unbalanced braces in traceEvents")?;
                if depth == 0 {
                    let obj = &body[obj_start.take().ok_or("brace underflow")?..=i];
                    events.push(parse_event_object(obj)?);
                }
            }
            ']' if depth == 0 => return Ok(events),
            _ => {}
        }
    }
    Err("traceEvents array never closed".into())
}

/// Parses one flat event object (with at most one nested `args` object).
fn parse_event_object(obj: &str) -> Result<ParsedEvent, String> {
    let mut ev = ParsedEvent::default();
    for (path, key, value) in iter_fields(obj)? {
        match (path.as_deref(), key.as_str()) {
            (None, "ph") => ev.ph = unquote(&value)?,
            (None, "name") => ev.name = unquote(&value)?,
            (None, "tid") => ev.tid = Some(parse_num(&value)? as i64),
            (None, "ts") => ev.ts = Some(parse_num(&value)?),
            (None, "dur") => ev.dur = Some(parse_num(&value)?),
            (None, "id") => ev.id = Some(parse_num(&value)? as u64),
            (Some("args"), "trace_id") => ev.trace_id = Some(parse_num(&value)? as u64),
            (Some("args"), "arg") => ev.arg = Some(parse_num(&value)? as u64),
            _ => {}
        }
    }
    if ev.ph.is_empty() {
        return Err(format!("event without ph: {obj}"));
    }
    Ok(ev)
}

/// Yields `(nested_object_name, key, raw_value)` triples for a flat object
/// with at most one nesting level.
#[allow(clippy::type_complexity)]
fn iter_fields(obj: &str) -> Result<Vec<(Option<String>, String, String)>, String> {
    let mut out = Vec::new();
    let bytes = obj.as_bytes();
    let mut i = 0usize;
    let mut path: Option<String> = None;
    // skip opening '{'
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    i += 1;
    loop {
        // find next key (a quoted string) or a closing brace
        while i < bytes.len() && !matches!(bytes[i], b'"' | b'}') {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("truncated object".into());
        }
        if bytes[i] == b'}' {
            if path.take().is_none() {
                return Ok(out);
            }
            i += 1;
            continue;
        }
        let (key, after) = read_string(obj, i)?;
        i = after;
        while i < bytes.len() && bytes[i] != b':' {
            i += 1;
        }
        i += 1; // past ':'
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("truncated value".into());
        }
        if bytes[i] == b'{' {
            path = Some(key);
            i += 1;
            continue;
        }
        let (value, after) = if bytes[i] == b'"' {
            let (s, after) = read_string(obj, i)?;
            (format!("\"{s}\""), after)
        } else {
            let mut j = i;
            while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b']') {
                j += 1;
            }
            (obj[i..j].trim().to_string(), j)
        };
        out.push((path.clone(), key, value));
        i = after;
    }
}

/// Reads a JSON string starting at the opening quote; returns its raw
/// contents (escape sequences preserved) and the index just past the
/// closing quote.
fn read_string(s: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[start], b'"');
    let mut i = start + 1;
    let mut out = String::new();
    let mut escaped = false;
    while i < bytes.len() {
        let c = s[i..].chars().next().unwrap();
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            out.push(c);
            escaped = true;
        } else if c == '"' {
            return Ok((out, i + 1));
        } else {
            out.push(c);
        }
        i += c.len_utf8();
    }
    Err("unterminated string".into())
}

fn unquote(v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected string, got {v}"))
    }
}

fn parse_num(v: &str) -> Result<f64, String> {
    v.trim()
        .parse::<f64>()
        .map_err(|e| format!("bad number {v:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"traceEvents":[
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"w0"}},
{"name":"region_posted(injector)","cat":"pyjama","ph":"X","pid":1,"tid":1,"ts":1.000,"dur":1.000,"args":{"trace_id":7,"arg":0}},
{"name":"region_run","cat":"pyjama","ph":"X","pid":1,"tid":2,"ts":3.000,"dur":6.000,"args":{"trace_id":7,"arg":0}},
{"name":"flow","cat":"pyjama","ph":"s","id":7,"pid":1,"tid":1,"ts":1.500},
{"name":"flow","cat":"pyjama","ph":"f","id":7,"pid":1,"tid":2,"ts":3.500,"bp":"e"}
],"displayTimeUnit":"ms"}
"#;

    #[test]
    fn accepts_well_formed_trace() {
        let s = validate_chrome_trace(GOOD).expect("valid");
        assert_eq!(s.flows, 1);
        assert_eq!(s.events, 2);
        assert_eq!(s.threads, 2);
    }

    #[test]
    fn rejects_dangling_flow_start() {
        let bad = GOOD.replace("\"ph\":\"f\"", "\"ph\":\"t\"");
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("flow id 7"), "{err}");
    }

    #[test]
    fn rejects_backwards_timestamps() {
        let bad = GOOD.replace("\"tid\":2,\"ts\":3.000", "\"tid\":1,\"ts\":0.500");
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("not json at all").is_err());
    }

    #[test]
    fn parses_nested_args_fields() {
        let evs = parse_trace_events(GOOD).unwrap();
        let x = evs.iter().find(|e| e.ph == "X").unwrap();
        assert_eq!(x.trace_id, Some(7));
        assert_eq!(x.arg, Some(0));
        assert_eq!(x.name, "region_posted(injector)");
    }
}
