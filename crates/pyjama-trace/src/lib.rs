//! # pyjama-trace — causal, low-overhead lifecycle tracing
//!
//! Every unit of work (event, target region, HTTP connection) is minted a
//! [`TraceId`] at creation; the instrumented crates call [`emit`] at each
//! lifecycle transition (post, dequeue, run, park, wake, …). Events land
//! in lock-free per-thread ring buffers ([`ring`]) — fixed capacity,
//! drop-oldest, no allocation on the hot path. A collector ([`collect`])
//! snapshots all rings into a [`Trace`], which can be
//!
//! * exported as Chrome `about://tracing` JSON with flow arrows along each
//!   `TraceId` ([`Trace::to_chrome_json`]), or
//! * analysed in-process: per-stage latency histograms
//!   ([`Trace::stage_delta`], reusing `pyjama_metrics::Histogram`) and the
//!   critical path of one flow ([`Trace::critical_path`]).
//!
//! ## Cost model
//!
//! * Crate feature `trace` off: every [`emit`] is an empty inline function;
//!   the instrumentation compiles to nothing.
//! * Feature on, tracing disabled (the default at runtime): one relaxed
//!   atomic load per hook, and [`TraceId::mint`] returns [`TraceId::NONE`]
//!   without touching the shared counter.
//! * Enabled: one timestamp read (calibrated TSC on x86_64, ~tens of ns),
//!   one TLS access, and four relaxed stores per event. The first emit on
//!   a thread additionally allocates and first-touch-faults that thread's
//!   ring (~768 KiB at the default capacity) — a one-time cost that the
//!   `trace_overhead` bench deliberately keeps out of its steady-state
//!   measurement.

pub mod analyze;
pub mod chrome;
pub mod collect;
pub mod event;
pub mod id;
pub mod ring;
pub mod validate;

pub use collect::{collect, Trace, ThreadTrace};
pub use event::{arg, Stage, TraceEvent};
pub use id::TraceId;
pub use ring::set_ring_capacity;

use std::sync::atomic::{AtomicBool, Ordering};

/// The runtime switch. Off by default; flipped by [`enable`]/[`disable`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The trace clock.
///
/// `Instant::now()` costs ~35 ns per read (a `clock_gettime` vdso call) —
/// the entire emit budget several times over. On x86_64 we read the
/// invariant TSC instead (~6 ns) and convert ticks to nanoseconds with a
/// fixed-point factor calibrated once, against the OS monotonic clock,
/// when the epoch is pinned. The calibration window is ~1 ms, so the two
/// bracketing `clock_gettime` reads contribute < 1e-4 relative scale
/// error — a uniform stretch on every timestamp, invisible to the
/// within-trace deltas the analysis computes. TSC skew between cores after
/// a thread migration can be a few cycles; the per-thread rings clamp
/// timestamps monotone on push (see [`ring`]), which keeps the exported
/// trace valid without any fencing on the hot path.
mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    #[cfg(target_arch = "x86_64")]
    struct Calibration {
        tsc0: u64,
        /// Nanoseconds per TSC tick in 2^32 fixed point.
        mult: u64,
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: RDTSC is unprivileged and always present on x86_64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(target_arch = "x86_64")]
    fn calibration() -> &'static Calibration {
        static CALIBRATION: OnceLock<Calibration> = OnceLock::new();
        CALIBRATION.get_or_init(|| {
            let t0 = Instant::now();
            let tsc0 = rdtsc();
            while t0.elapsed() < std::time::Duration::from_millis(1) {
                std::hint::spin_loop();
            }
            let ticks = (rdtsc() - tsc0).max(1);
            let ns = t0.elapsed().as_nanos() as u128;
            Calibration {
                tsc0,
                mult: ((ns << 32) / ticks as u128) as u64,
            }
        })
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn now_ns() -> u64 {
        let c = calibration();
        // saturating: a core whose TSC trails the calibration core's by a
        // few cycles must not wrap to a huge timestamp.
        let ticks = rdtsc().saturating_sub(c.tsc0);
        ((ticks as u128 * c.mult as u128) >> 32) as u64
    }

    #[cfg(target_arch = "x86_64")]
    pub fn pin_epoch() {
        calibration();
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub fn pin_epoch() {
        epoch();
    }
}

/// Nanoseconds since the trace epoch (fixed at first use, monotone per
/// thread).
#[inline]
pub fn now_ns() -> u64 {
    clock::now_ns()
}

/// Turns tracing on. Idempotent; pins the trace epoch (and calibrates the
/// TSC clock) on first call.
pub fn enable() {
    clock::pin_epoch(); // pin the time origin before any event can be recorded
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off. Events already recorded stay collectable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True while the runtime switch is on. This is the *only* cost a disabled
/// emit site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards everything recorded so far (rings stay registered; ids keep
/// growing). Use between benchmark phases.
pub fn clear() {
    ring::clear_all();
}

/// Records one lifecycle event on the calling thread's ring.
///
/// With the `trace` feature off this is an empty `#[inline]` stub. With the
/// feature on but tracing disabled it is a single relaxed atomic load.
#[inline]
pub fn emit(id: TraceId, stage: Stage, arg: u32) {
    #[cfg(feature = "trace")]
    {
        if !enabled() {
            return;
        }
        ring::push_current(TraceEvent {
            ts_ns: now_ns(),
            id,
            stage,
            arg,
        });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (id, stage, arg);
    }
}

/// [`emit`] stamped with the moment work *was created* rather than now —
/// used when the creation site already captured a timestamp.
#[inline]
pub fn emit_at(ts_ns: u64, id: TraceId, stage: Stage, arg: u32) {
    #[cfg(feature = "trace")]
    {
        if !enabled() {
            return;
        }
        ring::push_current(TraceEvent { ts_ns, id, stage, arg });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (ts_ns, id, stage, arg);
    }
}

/// Serializes tests that flip the global switch (unit tests run on threads
/// of one process and would otherwise race on `ENABLED` and the rings).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_respects_the_switch() {
        let _g = test_lock();
        disable();
        clear();
        emit(TraceId::from_raw(999_001), Stage::RegionPosted, 0);
        enable();
        emit(TraceId::from_raw(999_002), Stage::RegionPosted, 0);
        disable();
        let t = collect();
        let all: Vec<_> = t.iter_events().collect();
        assert!(all.iter().all(|(_, e)| e.id.raw() != 999_001));
        assert!(all.iter().any(|(_, e)| e.id.raw() == 999_002));
    }

    #[test]
    fn timestamps_are_monotone_on_one_thread() {
        let _g = test_lock();
        enable();
        clear();
        let id = TraceId::mint();
        for _ in 0..100 {
            emit(id, Stage::EventPosted, 0);
        }
        disable();
        let t = collect();
        for th in &t.threads {
            let mine: Vec<_> = th.events.iter().filter(|e| e.id == id).collect();
            assert!(mine.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        }
    }
}
