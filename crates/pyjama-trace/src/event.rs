//! The trace event vocabulary.
//!
//! One [`Stage`] per lifecycle transition the runtime can witness. The set
//! mirrors the paper's event pipeline (post → queue → dispatch), the
//! work-stealing executor (post → dequeue → run), the §5c await barrier
//! (enter → park → wake → exit) and the HTTP connection re-arm chain
//! (accept → re-arm → idle park → ready → response). Each recorded
//! [`TraceEvent`] is a fixed-size `Copy` value — no allocation on the hot
//! path, ever.

use crate::id::TraceId;

/// A lifecycle stage. The discriminants are stable (they are what the ring
/// buffer stores), so only append new variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    // -- event-loop layer (pyjama-events) ---------------------------------
    /// An event was pushed onto an event queue.
    EventPosted = 0,
    /// The EDT started dispatching the event's handler.
    EventDispatchBegin = 1,
    /// The handler returned (arg 1 = panicked).
    EventDispatchEnd = 2,
    /// A due timer migrated from the timer queue to the event queue.
    TimerFired = 3,

    // -- executor layer (pyjama-runtime) ----------------------------------
    /// `invoke_target_block` accepted a region (arg = mode, see [`arg`]).
    RegionInvoked = 4,
    /// A region was enqueued on a target (arg: injector/member/EDT).
    RegionPosted = 5,
    /// Member short-circuit: the caller runs the region inline.
    RegionInline = 6,
    /// A worker pulled the region out of a queue (arg: local/steal/
    /// injector/help provenance).
    RegionDequeued = 7,
    /// The region body started executing.
    RegionRunBegin = 8,
    /// The region body finished (arg 1 = panicked).
    RegionRunEnd = 9,
    /// The region was cancelled before running.
    RegionCancelled = 10,

    // -- §5c await barrier -------------------------------------------------
    /// A thread entered `await_until` for this handle.
    BarrierEnter = 11,
    /// The awaiting thread found no work to help with and parked.
    BarrierPark = 12,
    /// The parked thread woke (notify, timer deadline, or spurious).
    BarrierWake = 13,
    /// The await completed (task terminal or deadline).
    BarrierExit = 14,

    // -- worker thread state (no trace id) ---------------------------------
    /// A pool worker went to sleep on its eventcount (arg = worker index).
    WorkerPark = 15,
    /// A pool worker woke up (arg = worker index).
    WorkerWake = 16,

    // -- HTTP connection chain (pyjama-http) --------------------------------
    /// A TCP connection was accepted (arg = acceptor shard).
    ConnAccepted = 17,
    /// The connection re-armed: its next serve step was posted as a region.
    ConnRearm = 18,
    /// The quiet connection moved to the idle parker.
    ConnIdlePark = 19,
    /// The parked connection came back (arg 1 = idle timeout, 0 = readable).
    ConnReady = 20,
    /// A response was written back to the socket (arg = requests served on
    /// this connection so far).
    ResponseWritten = 21,

    // -- fork-join teams (pyjama-omp) ---------------------------------------
    /// A parallel region forked its team (arg = team size). Emitted by the
    /// encountering thread; closes with [`Stage::TeamJoin`], so a traced run
    /// shows each region's full fork-to-join span as one slice.
    TeamFork = 22,
    /// The region joined: every member passed the join barrier and the
    /// team quiesced (arg = 1 if the hot-team fast path served the fork).
    TeamJoin = 23,

    // -- readiness reactor (pyjama-http, ServingPolicy::Reactor) -----------
    /// The reactor dispatched a connection on kernel readiness (arg:
    /// readable/writable/timeout, see [`arg::READY_READABLE`]).
    ReactorReady = 24,
    /// A serving region re-registered its connection with the reactor
    /// (arg 0 = read interest, 1 = write interest after a short write).
    ReactorRearm = 25,

    // -- live control plane (pyjama-control) --------------------------------
    /// A validated config snapshot was atomically published (arg = low 32
    /// bits of the new generation). The publish and every subscriber apply
    /// share one minted trace id, so a reconfig is one causal flow.
    ConfigPublish = 26,
    /// One subscriber applied the published snapshot (arg = subscriber
    /// index in registration order).
    ConfigApply = 27,
    /// The admission controller shed a request with `429 Retry-After`
    /// (arg = observed queue depth at the decision point).
    AdmissionShed = 28,
}

/// `arg` value vocabularies, per stage.
pub mod arg {
    /// [`super::Stage::RegionPosted`]: pushed onto the global FIFO injector.
    pub const POST_INJECTOR: u32 = 0;
    /// [`super::Stage::RegionPosted`]: pushed onto the posting member's own deque.
    pub const POST_MEMBER: u32 = 1;
    /// [`super::Stage::RegionPosted`]: posted to an EDT target's event loop.
    pub const POST_EDT: u32 = 2;

    /// [`super::Stage::RegionDequeued`]: owner popped its own deque.
    pub const DEQ_LOCAL: u32 = 0;
    /// [`super::Stage::RegionDequeued`]: stolen from a sibling's deque.
    pub const DEQ_STEAL: u32 = 1;
    /// [`super::Stage::RegionDequeued`]: taken from the global injector.
    pub const DEQ_INJECTOR: u32 = 2;
    /// [`super::Stage::RegionDequeued`]: pulled by an outside helper
    /// (`help_one` during an await).
    pub const DEQ_HELP: u32 = 3;

    /// [`super::Stage::RegionInvoked`] mode operands.
    pub const MODE_WAIT: u32 = 0;
    pub const MODE_NOWAIT: u32 = 1;
    pub const MODE_NAMEAS: u32 = 2;
    pub const MODE_AWAIT: u32 = 3;

    /// [`super::Stage::RegionRunEnd`] / [`super::Stage::EventDispatchEnd`]: clean return.
    pub const END_OK: u32 = 0;
    /// [`super::Stage::RegionRunEnd`] / [`super::Stage::EventDispatchEnd`]: the body panicked.
    pub const END_PANICKED: u32 = 1;

    /// [`super::Stage::ConnReady`] / [`super::Stage::ReactorReady`]: socket readable.
    pub const READY_READABLE: u32 = 0;
    /// [`super::Stage::ConnReady`] / [`super::Stage::ReactorReady`]: idle deadline elapsed.
    pub const READY_TIMEOUT: u32 = 1;
    /// [`super::Stage::ReactorReady`]: socket writable (EPOLLOUT re-arm fired).
    pub const READY_WRITABLE: u32 = 2;

    /// [`super::Stage::ReactorRearm`]: registered for read readiness.
    pub const REARM_READ: u32 = 0;
    /// [`super::Stage::ReactorRearm`]: registered for write readiness.
    pub const REARM_WRITE: u32 = 1;

    /// [`super::Stage::TeamJoin`]: the fork leased (or spawned) workers.
    pub const JOIN_COLD: u32 = 0;
    /// [`super::Stage::TeamJoin`]: the fork reused the caller's hot team.
    pub const JOIN_HOT: u32 = 1;

    /// Human label for a `RegionDequeued` provenance value.
    pub fn provenance_name(arg: u32) -> &'static str {
        match arg {
            DEQ_LOCAL => "local",
            DEQ_STEAL => "steal",
            DEQ_INJECTOR => "injector",
            DEQ_HELP => "help",
            _ => "?",
        }
    }
}

impl Stage {
    /// Reconstructs a stage from its stored discriminant.
    pub fn from_u8(v: u8) -> Option<Stage> {
        use Stage::*;
        Some(match v {
            0 => EventPosted,
            1 => EventDispatchBegin,
            2 => EventDispatchEnd,
            3 => TimerFired,
            4 => RegionInvoked,
            5 => RegionPosted,
            6 => RegionInline,
            7 => RegionDequeued,
            8 => RegionRunBegin,
            9 => RegionRunEnd,
            10 => RegionCancelled,
            11 => BarrierEnter,
            12 => BarrierPark,
            13 => BarrierWake,
            14 => BarrierExit,
            15 => WorkerPark,
            16 => WorkerWake,
            17 => ConnAccepted,
            18 => ConnRearm,
            19 => ConnIdlePark,
            20 => ConnReady,
            21 => ResponseWritten,
            22 => TeamFork,
            23 => TeamJoin,
            24 => ReactorReady,
            25 => ReactorRearm,
            26 => ConfigPublish,
            27 => ConfigApply,
            28 => AdmissionShed,
            _ => return None,
        })
    }

    /// Snake-case display name (used as the Chrome slice name).
    pub fn name(self) -> &'static str {
        use Stage::*;
        match self {
            EventPosted => "event_posted",
            EventDispatchBegin => "event_dispatch",
            EventDispatchEnd => "event_dispatch_end",
            TimerFired => "timer_fired",
            RegionInvoked => "region_invoked",
            RegionPosted => "region_posted",
            RegionInline => "region_inline",
            RegionDequeued => "region_dequeued",
            RegionRunBegin => "region_run",
            RegionRunEnd => "region_run_end",
            RegionCancelled => "region_cancelled",
            BarrierEnter => "barrier_enter",
            BarrierPark => "barrier_park",
            BarrierWake => "barrier_wake",
            BarrierExit => "barrier_exit",
            WorkerPark => "worker_park",
            WorkerWake => "worker_wake",
            ConnAccepted => "conn_accepted",
            ConnRearm => "conn_rearm",
            ConnIdlePark => "conn_idle_park",
            ConnReady => "conn_ready",
            ResponseWritten => "response_written",
            TeamFork => "team_fork",
            TeamJoin => "team_join",
            ReactorReady => "reactor_ready",
            ReactorRearm => "reactor_rearm",
            ConfigPublish => "config_publish",
            ConfigApply => "config_apply",
            AdmissionShed => "admission_shed",
        }
    }

    /// If this stage opens an interval closed by another stage *on the same
    /// thread*, returns the closing stage. The Chrome exporter turns such
    /// pairs into duration slices.
    pub fn closes_with(self) -> Option<Stage> {
        use Stage::*;
        match self {
            EventDispatchBegin => Some(EventDispatchEnd),
            RegionRunBegin => Some(RegionRunEnd),
            BarrierPark => Some(BarrierWake),
            WorkerPark => Some(WorkerWake),
            TeamFork => Some(TeamJoin),
            _ => None,
        }
    }

    /// True for stages that close an interval (consumed by the pairing
    /// scan; exported standalone only when their opener was dropped).
    pub fn is_closer(self) -> bool {
        use Stage::*;
        matches!(
            self,
            EventDispatchEnd | RegionRunEnd | BarrierWake | WorkerWake | TeamJoin
        )
    }
}

/// One recorded lifecycle event. 24 bytes, `Copy`, lives in a per-thread
/// ring slot; never heap-allocated on the emit path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (first `enable()`), monotone per
    /// thread because it derives from `Instant`.
    pub ts_ns: u64,
    /// The causal flow this event belongs to (0 = none).
    pub id: TraceId,
    /// Which lifecycle transition happened.
    pub stage: Stage,
    /// Stage-specific operand (see [`arg`]).
    pub arg: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_roundtrips_through_u8() {
        for v in 0..=28u8 {
            let s = Stage::from_u8(v).expect("valid discriminant");
            assert_eq!(s as u8, v);
            assert!(!s.name().is_empty());
        }
        assert_eq!(Stage::from_u8(200), None);
    }

    #[test]
    fn pairing_is_consistent() {
        for v in 0..=28u8 {
            let s = Stage::from_u8(v).unwrap();
            if let Some(close) = s.closes_with() {
                assert!(close.is_closer(), "{close:?} must be a closer");
            }
        }
    }

    #[test]
    fn event_is_small() {
        assert!(std::mem::size_of::<TraceEvent>() <= 24);
    }
}
