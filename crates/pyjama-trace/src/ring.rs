//! Per-thread lock-free ring buffers and the global ring registry.
//!
//! Each tracing thread owns one fixed-capacity ring. The owner is the only
//! writer, so a push is: three relaxed slot stores, then a release store of
//! the head cursor. When the ring is full the oldest slot is overwritten —
//! *drop-oldest* — which keeps the hot path wait-free and bounds memory.
//!
//! Readers (the collector) never block writers. A drain loads the head
//! (acquire), copies the window `[head - capacity, head)`, then re-loads
//! the head and discards any slot the writer may have lapped in the
//! meantime (`idx + capacity <= head'` means slot `idx` shares a physical
//! slot with a write that may have started). Slot words are `AtomicU64`s
//! read/written relaxed, so a lapped slot yields a stale or mixed value —
//! never UB — and the lap check throws it away.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::{Stage, TraceEvent};
use crate::id::TraceId;

/// Default events per thread ring (~768 KiB per thread at 3 words/slot).
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// Capacity used for rings registered from now on (existing rings keep
/// theirs). Stored as a power-of-two slot count.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Monotone thread id assigned at first emit on each thread.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sets the per-thread ring capacity (rounded up to a power of two) for
/// threads that have not emitted yet. Call before `enable()`.
pub fn set_ring_capacity(events: usize) {
    let cap = events.max(16).next_power_of_two();
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// One slot = one packed `TraceEvent`. Individual words are atomic so a
/// racing reader sees stale data, not undefined behaviour.
struct Slot {
    ts_ns: AtomicU64,
    id: AtomicU64,
    stage_arg: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            ts_ns: AtomicU64::new(0),
            id: AtomicU64::new(0),
            stage_arg: AtomicU64::new(u64::MAX), // invalid stage marker
        }
    }
}

/// A single thread's event ring plus its identity.
///
/// Aligned to 128 bytes (two cache lines, covering adjacent-line
/// prefetchers) so the hot owner-written words (`head`, `last_ts`) of two
/// different threads' rings can never share a cache line — without this,
/// adjacent heap allocations turn every push into cross-core ping-pong.
#[repr(align(128))]
pub(crate) struct Ring {
    pub(crate) tid: u32,
    pub(crate) label: String,
    /// Total events ever pushed; slot for event `i` is `i % capacity`.
    head: AtomicU64,
    /// Events below this index are invisible to drains (set by `clear`).
    floor: AtomicU64,
    /// Timestamp of the last push; pushes clamp to it so per-thread
    /// timestamps stay monotone even if the TSC clock steps back a few
    /// cycles after a core migration. Owner-only, relaxed.
    last_ts: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u32, label: String, capacity: usize) -> Ring {
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::empty()).collect();
        Ring {
            tid,
            label,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            last_ts: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Owner-only push. Relaxed slot stores, release head publish.
    #[inline]
    pub(crate) fn push(&self, ev: TraceEvent) {
        let ts = ev.ts_ns.max(self.last_ts.load(Ordering::Relaxed));
        self.last_ts.store(ts, Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (self.slots.len() - 1)];
        slot.ts_ns.store(ts, Ordering::Relaxed);
        slot.id.store(ev.id.raw(), Ordering::Relaxed);
        slot.stage_arg.store(
            ((ev.stage as u64) << 32) | ev.arg as u64,
            Ordering::Relaxed,
        );
        self.head.store(h + 1, Ordering::Release);
    }

    /// Snapshot of the currently-held window. Returns `(events, dropped)`
    /// where `dropped` counts events lost to overwrite or the clear floor.
    pub(crate) fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let floor = self.floor.load(Ordering::Acquire);
        let start = head.saturating_sub(cap).max(floor);
        let mut raw = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
            raw.push((
                idx,
                slot.ts_ns.load(Ordering::Relaxed),
                slot.id.load(Ordering::Relaxed),
                slot.stage_arg.load(Ordering::Relaxed),
            ));
        }
        // Lap check: anything the writer may have started rewriting while
        // we copied is discarded.
        let head_after = self.head.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(raw.len());
        for (idx, ts_ns, id, stage_arg) in raw {
            if idx + cap <= head_after {
                continue; // lapped mid-drain
            }
            let Some(stage) = Stage::from_u8((stage_arg >> 32) as u8) else {
                continue; // torn or never-written slot
            };
            events.push(TraceEvent {
                ts_ns,
                id: TraceId::from_raw(id),
                stage,
                arg: stage_arg as u32,
            });
        }
        // dropped = everything pushed since the floor minus what we kept.
        let dropped = (head - floor).saturating_sub(events.len() as u64);
        (events, dropped)
    }

    /// Hides everything recorded so far from future drains.
    fn clear(&self) {
        self.floor
            .store(self.head.load(Ordering::Acquire), Ordering::Release);
    }
}

thread_local! {
    static THREAD_RING: OnceLock<Arc<Ring>> = const { OnceLock::new() };
}

fn register_current_thread() -> Arc<Ring> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(Ring::new(tid, label, CAPACITY.load(Ordering::Relaxed)));
    registry().lock().unwrap().push(Arc::clone(&ring));
    ring
}

/// Pushes an event onto the calling thread's ring, registering the ring on
/// first use. Steady-state cost: one TLS access + four relaxed stores.
#[inline]
pub(crate) fn push_current(ev: TraceEvent) {
    THREAD_RING.with(|cell| {
        cell.get_or_init(register_current_thread).push(ev);
    });
}

/// Drains every registered ring (including rings of dead threads, kept
/// alive by the registry).
pub(crate) fn drain_all() -> Vec<(u32, String, Vec<TraceEvent>, u64)> {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap().clone();
    rings
        .iter()
        .map(|r| {
            let (events, dropped) = r.drain();
            (r.tid, r.label.clone(), events, dropped)
        })
        .collect()
}

/// Hides all recorded events from future drains (rings stay registered).
pub(crate) fn clear_all() {
    for r in registry().lock().unwrap().iter() {
        r.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    fn ev(ts: u64, id: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            id: TraceId::from_raw(id),
            stage: Stage::RegionPosted,
            arg: 0,
        }
    }

    #[test]
    fn push_then_drain_returns_events_in_order() {
        let r = Ring::new(0, "t".into(), 16);
        for i in 0..5 {
            r.push(ev(i, i + 1));
        }
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn overflow_drops_oldest() {
        let r = Ring::new(0, "t".into(), 16);
        for i in 0..40 {
            r.push(ev(i, 1));
        }
        let (events, dropped) = r.drain();
        // The slot the writer's *next* push would overwrite cannot be
        // proven stable, so a full ring yields cap - 1 events.
        assert_eq!(events.len(), 15);
        assert_eq!(dropped, 25);
        assert_eq!(events.first().unwrap().ts_ns, 25, "oldest surviving = 25");
        assert_eq!(events.last().unwrap().ts_ns, 39);
    }

    #[test]
    fn clear_hides_prior_events() {
        let r = Ring::new(0, "t".into(), 16);
        r.push(ev(1, 1));
        r.clear();
        let (events, _) = r.drain();
        assert!(events.is_empty());
        r.push(ev(2, 1));
        let (events, dropped) = r.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        assert_eq!(events[0].ts_ns, 2);
    }

    #[test]
    fn concurrent_drain_never_yields_garbage() {
        let r = Arc::new(Ring::new(0, "t".into(), 64));
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    r.push(ev(i, i + 1));
                }
            })
        };
        let mut seen = 0usize;
        while !writer.is_finished() {
            let (events, _) = r.drain();
            for e in &events {
                // invariant baked into the writer: id == ts + 1
                assert_eq!(e.id.raw(), e.ts_ns + 1, "torn event escaped lap check");
            }
            seen += events.len();
        }
        writer.join().unwrap();
        assert!(seen > 0);
    }
}
