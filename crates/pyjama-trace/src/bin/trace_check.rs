//! CI helper: validates that a file is well-formed Chrome trace JSON.
//!
//! Usage: `trace_check <path> [<path>…]`
//!
//! Exit code 0 if every file passes the checks in
//! [`pyjama_trace::validate`]; 1 (with a diagnostic on stderr) otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json> [...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(json) => match pyjama_trace::validate::validate_chrome_trace(&json) {
                Ok(s) => println!(
                    "{path}: ok — {} events, {} flows, {} threads",
                    s.events, s.flows, s.threads
                ),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
