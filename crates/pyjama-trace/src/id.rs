//! Trace identifiers.
//!
//! A [`TraceId`] is minted when a unit of work is *created* (an event is
//! built, a target region is constructed, a connection is accepted) and is
//! carried through every subsequent handoff, so the collector can stitch
//! the hops back into one causal chain. Id `0` is reserved for "not
//! traced": when the runtime switch is off, [`TraceId::mint`] returns
//! [`TraceId::NONE`] without touching the shared counter, and every
//! downstream `emit` for that work is a single atomic load.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global id allocator. Starts at 1; 0 means "no trace".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A causal identifier threaded through work handoffs. `Copy`, 8 bytes,
/// free to store everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The "not traced" id. Events tagged with it are recorded (they still
    /// describe thread activity, e.g. worker parks) but belong to no flow.
    pub const NONE: TraceId = TraceId(0);

    /// Mints a fresh id, or [`TraceId::NONE`] when tracing is disabled
    /// (so disabled work creation costs one relaxed load, nothing more).
    #[inline]
    pub fn mint() -> TraceId {
        if !crate::enabled() {
            return TraceId::NONE;
        }
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// True if this is the reserved "no trace" id.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True if this id identifies a real flow.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The raw id value (0 for [`TraceId::NONE`]).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value (e.g. when parsing an export).
    #[inline]
    pub fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }
}

impl Default for TraceId {
    fn default() -> Self {
        TraceId::NONE
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let _g = crate::test_lock();
        crate::enable();
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
        crate::disable();
    }

    #[test]
    fn mint_while_disabled_returns_none() {
        let _g = crate::test_lock();
        crate::disable();
        assert!(TraceId::mint().is_none());
        assert_eq!(TraceId::NONE.raw(), 0);
    }

    #[test]
    fn raw_roundtrip() {
        let id = TraceId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert!(id.is_some());
    }
}
