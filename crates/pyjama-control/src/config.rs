//! The immutable configuration snapshot and its validation/diff logic.
//!
//! A [`Config`] is a plain `Copy` struct of every runtime-tunable knob.
//! Nothing in the data plane ever mutates one: to change a value, build a
//! modified copy and hand it to `ControlPlane::apply`, which validates it
//! as a whole (so a half-nonsensical config can never be half-applied) and
//! publishes it atomically. Field defaults exactly match the constants the
//! data plane used before the control plane existed (`ServerOptions`
//! defaults, the 25 ms reactor sweep, the 8 MiB body cap), so a server that
//! never reconfigures behaves identically to one built before this crate.

use std::fmt;

/// Every runtime-tunable knob, as one immutable snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Logical worker-thread count for attached work-stealing pools.
    pub workers: usize,
    /// Hint: how many virtual targets the deployment intends to run
    /// (reported through `/admin`; informational, not enforced).
    pub virtual_targets: usize,
    /// Close a connection after this many responses (HTTP).
    pub max_requests_per_conn: u32,
    /// Evict a keep-alive connection idle for this many milliseconds.
    pub idle_timeout_ms: u64,
    /// Per-read/write socket deadline, milliseconds.
    pub io_timeout_ms: u64,
    /// Reactor deadline-sweep interval, milliseconds (was a hard-coded 25).
    pub sweep_interval_ms: u64,
    /// Largest request body accepted, bytes (was a hard-coded 8 MiB).
    pub max_body_bytes: usize,
    /// Spin budget override for the runtime's adaptive spins
    /// (`None` = leave the built-in/`PJ_SPIN_BUDGET` default in force).
    pub spin_budget: Option<u32>,
    /// Shed requests with 429 when queue depth exceeds this
    /// (0 = admission control disabled).
    pub admission_threshold: usize,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
}

impl Config {
    /// The defaults the data plane shipped with before it was configurable.
    pub const DEFAULT: Config = Config {
        workers: 4,
        virtual_targets: 1,
        max_requests_per_conn: 1000,
        idle_timeout_ms: 2_000,
        io_timeout_ms: 500,
        sweep_interval_ms: 25,
        max_body_bytes: 8 * 1024 * 1024,
        spin_budget: None,
        admission_threshold: 0,
        retry_after_secs: 1,
    };

    /// Whole-snapshot validation. A config is accepted or rejected as a
    /// unit; there is no partial application.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.workers > 4096 {
            return Err(ConfigError::TooManyWorkers(self.workers));
        }
        if self.max_requests_per_conn == 0 {
            return Err(ConfigError::ZeroRequestsPerConn);
        }
        if self.idle_timeout_ms == 0 || self.io_timeout_ms == 0 {
            return Err(ConfigError::ZeroTimeout);
        }
        if self.sweep_interval_ms == 0 || self.sweep_interval_ms > 60_000 {
            return Err(ConfigError::BadSweepInterval(self.sweep_interval_ms));
        }
        if self.max_body_bytes < 1024 {
            return Err(ConfigError::BodyCapTooSmall(self.max_body_bytes));
        }
        Ok(())
    }

    /// Which subsystems a transition from `old` to `self` touches.
    pub fn diff(&self, old: &Config) -> ConfigDiff {
        ConfigDiff {
            workers: self.workers != old.workers,
            spin_budget: self.spin_budget != old.spin_budget,
            conn_limits: self.max_requests_per_conn != old.max_requests_per_conn
                || self.idle_timeout_ms != old.idle_timeout_ms
                || self.io_timeout_ms != old.io_timeout_ms,
            sweep_interval: self.sweep_interval_ms != old.sweep_interval_ms,
            max_body: self.max_body_bytes != old.max_body_bytes,
            admission: self.admission_threshold != old.admission_threshold
                || self.retry_after_secs != old.retry_after_secs,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::DEFAULT
    }
}

/// Which knob groups changed between two snapshots. Subscribers use this to
/// skip work for fields they do not own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfigDiff {
    /// Worker-pool size changed.
    pub workers: bool,
    /// Spin-budget override changed.
    pub spin_budget: bool,
    /// Per-connection limits (max requests, idle/io deadlines) changed.
    pub conn_limits: bool,
    /// Reactor sweep interval changed.
    pub sweep_interval: bool,
    /// Body-size cap changed.
    pub max_body: bool,
    /// Admission threshold or retry-after changed.
    pub admission: bool,
}

impl ConfigDiff {
    /// True when anything at all changed.
    pub fn any(&self) -> bool {
        self.workers
            || self.spin_budget
            || self.conn_limits
            || self.sweep_interval
            || self.max_body
            || self.admission
    }
}

/// Why a candidate config was rejected. The old generation keeps serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0` — a pool with no threads can never drain its queue.
    ZeroWorkers,
    /// `workers` beyond any plausible deployment (guards against a typo'd
    /// POST spawning thousands of threads).
    TooManyWorkers(usize),
    /// `max_requests_per_conn == 0` would close every connection before
    /// its first response.
    ZeroRequestsPerConn,
    /// A zero idle/io deadline would time out every socket instantly.
    ZeroTimeout,
    /// Sweep interval of 0 would spin the reactor; above 60 s deadlines
    /// effectively stop firing.
    BadSweepInterval(u64),
    /// A body cap below 1 KiB rejects even trivial POSTs.
    BodyCapTooSmall(usize),
    /// A resize asked for more workers than the attached pool's fixed slot
    /// capacity (reported by the runtime subscriber at apply time).
    ExceedsPoolCapacity {
        /// Workers requested.
        requested: usize,
        /// The pool's immutable slot capacity.
        capacity: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be >= 1"),
            ConfigError::TooManyWorkers(n) => write!(f, "workers {n} exceeds sanity cap 4096"),
            ConfigError::ZeroRequestsPerConn => {
                write!(f, "max_requests_per_conn must be >= 1")
            }
            ConfigError::ZeroTimeout => write!(f, "idle/io timeouts must be >= 1 ms"),
            ConfigError::BadSweepInterval(ms) => {
                write!(f, "sweep_interval_ms {ms} outside 1..=60000")
            }
            ConfigError::BodyCapTooSmall(b) => {
                write!(f, "max_body_bytes {b} below 1 KiB floor")
            }
            ConfigError::ExceedsPoolCapacity { requested, capacity } => write!(
                f,
                "workers {requested} exceeds attached pool capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(Config::default(), Config::DEFAULT);
        Config::DEFAULT.validate().expect("defaults must validate");
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let ok = Config::DEFAULT;
        assert_eq!(
            Config { workers: 0, ..ok }.validate(),
            Err(ConfigError::ZeroWorkers)
        );
        assert_eq!(
            Config { workers: 5000, ..ok }.validate(),
            Err(ConfigError::TooManyWorkers(5000))
        );
        assert_eq!(
            Config { max_requests_per_conn: 0, ..ok }.validate(),
            Err(ConfigError::ZeroRequestsPerConn)
        );
        assert_eq!(
            Config { idle_timeout_ms: 0, ..ok }.validate(),
            Err(ConfigError::ZeroTimeout)
        );
        assert_eq!(
            Config { sweep_interval_ms: 0, ..ok }.validate(),
            Err(ConfigError::BadSweepInterval(0))
        );
        assert_eq!(
            Config { max_body_bytes: 16, ..ok }.validate(),
            Err(ConfigError::BodyCapTooSmall(16))
        );
    }

    #[test]
    fn diff_flags_only_what_changed() {
        let a = Config::DEFAULT;
        assert_eq!(a.diff(&a), ConfigDiff::default());
        assert!(!a.diff(&a).any());

        let b = Config { workers: 8, ..a };
        let d = b.diff(&a);
        assert!(d.workers && d.any());
        assert!(!d.conn_limits && !d.admission && !d.sweep_interval);

        let c = Config {
            admission_threshold: 64,
            idle_timeout_ms: 5_000,
            ..a
        };
        let d = c.diff(&a);
        assert!(d.admission && d.conn_limits);
        assert!(!d.workers);
    }

    #[test]
    fn errors_display() {
        let e = ConfigError::ExceedsPoolCapacity { requested: 99, capacity: 8 };
        assert!(e.to_string().contains("99"));
        assert!(ConfigError::ZeroWorkers.to_string().contains("workers"));
    }
}
