//! The lock-free snapshot cell: one `Acquire` load on the read path.
//!
//! # Design (§5k of DESIGN.md)
//!
//! [`ConfigCell`] is a hand-rolled, std-only arc-swap in the *leaky epoch*
//! style. The current snapshot lives behind one `AtomicPtr`; readers do a
//! single `Acquire` load and dereference — no reference count, no hazard
//! pointer, no lock, nothing shared-mutable touched. That is the entire
//! hot-path cost, which is what lets the serving loop consult live config
//! on every iteration (the bench gates it at ≤ 2 ns/op).
//!
//! The price is reclamation: a replaced snapshot can still be referenced by
//! a reader that loaded the pointer a nanosecond before the swap, and with
//! no reader registration there is no moment we can prove it quiescent. So
//! replaced snapshots are *retired, never freed* while the cell lives: the
//! publisher pushes the old pointer onto a mutex-guarded retire list, and
//! `Drop` frees the list plus the final current snapshot. Reconfigurations
//! are rare (human- or admin-API-initiated) and a snapshot is ~100 bytes,
//! so the retained history is bounded by "bytes per reconfig × reconfigs
//! per process lifetime" — negligible, and it buys a sound `&Config` with
//! an unrestricted lifetime tied only to the cell's own borrow.
//!
//! ## Memory ordering
//!
//! * **Publish** builds the boxed snapshot (plain stores), then `swap`s the
//!   pointer with `Release`: every field written before the swap
//!   happens-before any reader's `Acquire` load that observes the new
//!   pointer. A reader therefore never sees a generation number without the
//!   exact config contents published with it — the invariant the
//!   pyjama-check model (`models/config_cell.rs`) checks, and whose
//!   violation (publishing the pointer before the contents) the seeded
//!   mutation demonstrates being caught.
//! * **Read** is `Acquire` on the pointer, nothing else. Two reads on the
//!   same thread may witness generations n then n+1 (monotone per the
//!   single serialized publisher) but never n+1 then n.
//!
//! Publishers are serialized by the retire-list mutex, making generations
//! strictly increasing without a separate counter CAS.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

use crate::config::Config;

/// A published snapshot: the config plus the generation it was published
/// as. Readers get both from the same pointer, so they can never observe a
/// torn (generation, contents) pair.
#[derive(Debug)]
pub struct Snapshot {
    /// 1-based publish generation (0 is reserved for the pre-publish
    /// default snapshot).
    pub generation: u64,
    /// The configuration itself.
    pub config: Config,
}

/// The pre-publish snapshot readers see before the first `publish`.
static INITIAL: Snapshot = Snapshot {
    generation: 0,
    config: Config::DEFAULT,
};

/// Lock-free-reader configuration cell. See the module docs for the
/// ordering and reclamation story.
#[derive(Debug)]
pub struct ConfigCell {
    /// Current snapshot; null means "still on [`INITIAL`]".
    current: AtomicPtr<Snapshot>,
    /// Retired snapshots, kept alive until the cell drops. Doubles as the
    /// publisher serialization lock.
    retired: Mutex<Vec<*mut Snapshot>>,
}

// SAFETY: the raw pointers in `retired` are uniquely owned by the cell
// (created by `Box::into_raw`, freed only in `Drop`), and `Snapshot` is
// `Send + Sync`. `current` is only ever read (shared) or swapped (under the
// retire lock).
unsafe impl Send for ConfigCell {}
unsafe impl Sync for ConfigCell {}

impl ConfigCell {
    /// An empty cell serving [`Config::DEFAULT`] at generation 0. `const`
    /// so cells can live in `static` position.
    pub const fn new() -> ConfigCell {
        ConfigCell {
            current: AtomicPtr::new(std::ptr::null_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot: exactly one `Acquire` load (plus a null check
    /// folded into the branch predictor after the first publish).
    #[inline]
    pub fn read(&self) -> &Snapshot {
        let p = self.current.load(Ordering::Acquire);
        if p.is_null() {
            &INITIAL
        } else {
            // SAFETY: non-null pointers stored in `current` come from
            // `Box::into_raw` in `publish` and are freed only in `Drop`,
            // which takes `&mut self` — so the allocation outlives any
            // `&self` borrow this reference is tied to.
            unsafe { &*p }
        }
    }

    /// Current generation (0 until the first publish).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.read().generation
    }

    /// Atomically publishes `config` as the next generation and returns
    /// that generation. Concurrent publishers serialize on the retire
    /// lock, so generations are strictly increasing.
    pub fn publish(&self, config: Config) -> u64 {
        let mut retired = self.retired.lock().unwrap();
        let generation = self.read().generation + 1;
        let fresh = Box::into_raw(Box::new(Snapshot { generation, config }));
        // Release: the snapshot's contents happen-before any Acquire read
        // that observes `fresh`.
        let old = self.current.swap(fresh, Ordering::Release);
        if !old.is_null() {
            retired.push(old);
        }
        generation
    }
}

impl Default for ConfigCell {
    fn default() -> Self {
        ConfigCell::new()
    }
}

impl Drop for ConfigCell {
    fn drop(&mut self) {
        let current = *self.current.get_mut();
        if !current.is_null() {
            // SAFETY: uniquely owned (see `Send` impl); `&mut self`
            // guarantees no outstanding reader references.
            unsafe { drop(Box::from_raw(current)) };
        }
        for p in self.retired.get_mut().unwrap().drain(..) {
            // SAFETY: as above.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn fresh_cell_serves_default_at_generation_zero() {
        let cell = ConfigCell::new();
        let snap = cell.read();
        assert_eq!(snap.generation, 0);
        assert_eq!(snap.config, Config::DEFAULT);
    }

    #[test]
    fn publish_bumps_generation_and_swaps_contents() {
        let cell = ConfigCell::new();
        let mut cfg = Config::DEFAULT;
        cfg.workers = 9;
        assert_eq!(cell.publish(cfg), 1);
        assert_eq!(cell.read().generation, 1);
        assert_eq!(cell.read().config.workers, 9);
        cfg.workers = 3;
        assert_eq!(cell.publish(cfg), 2);
        assert_eq!(cell.read().config.workers, 3);
        assert_eq!(cell.generation(), 2);
    }

    #[test]
    fn readers_never_see_torn_generation_config_pairs() {
        // Publisher encodes the generation into `workers`; readers check
        // the pair stays consistent under a rapid publish storm.
        let cell = Arc::new(ConfigCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_gen = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.read();
                        if snap.generation > 0 {
                            assert_eq!(
                                snap.config.workers as u64,
                                snap.generation + 1,
                                "torn read: generation/config mismatch"
                            );
                        }
                        assert!(snap.generation >= last_gen, "generation went backwards");
                        last_gen = snap.generation;
                    }
                })
            })
            .collect();
        for g in 1..500u64 {
            let mut cfg = Config::DEFAULT;
            cfg.workers = (g + 1) as usize;
            assert_eq!(cell.publish(cfg), g);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.generation(), 499);
    }

    #[test]
    fn drop_after_many_publishes_frees_cleanly() {
        let cell = ConfigCell::new();
        for _ in 0..100 {
            cell.publish(Config::DEFAULT);
        }
        drop(cell); // miri-style smoke: no double free / leak panic paths
    }
}
