//! The [`ControlPlane`]: validate → diff → publish → notify.
//!
//! One plane owns one [`ConfigCell`] plus an ordered list of subscribers.
//! `apply` is the only write path: it validates the candidate as a whole
//! (including registered *prechecks* such as "the attached pool has enough
//! slot capacity"), publishes atomically, then runs each subscriber with
//! the new config and the field-level diff. Publish and every subscriber
//! application share one minted [`TraceId`], so a reconfiguration shows up
//! in the Chrome export as a single causal flow:
//! `config_publish → config_apply(0) → config_apply(1) → …`.
//!
//! Data-plane readers never touch the plane — they hold a [`ConfigHandle`]
//! (a clone of the cell's `Arc`) and pay one `Acquire` load per read.

use std::sync::{Arc, Mutex, Weak};

use pyjama_metrics::{ReconfigCounters, ReconfigStats};
use pyjama_runtime::WorkerTarget;
use pyjama_trace::{Stage, TraceId};

use crate::cell::{ConfigCell, Snapshot};
use crate::config::{Config, ConfigDiff, ConfigError};

/// A cheap clonable read handle onto the plane's config cell. This is what
/// the data plane (HTTP server, reactor loop) holds: `read()` is one
/// `Acquire` load.
#[derive(Clone, Debug)]
pub struct ConfigHandle {
    cell: Arc<ConfigCell>,
}

impl ConfigHandle {
    /// The current snapshot (config + generation), lock-free.
    #[inline]
    pub fn read(&self) -> &Snapshot {
        self.cell.read()
    }

    /// A copy of the current config.
    #[inline]
    pub fn config(&self) -> Config {
        self.cell.read().config
    }

    /// The current generation (0 until the first `apply`).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// A handle serving [`Config::DEFAULT`] forever (generation 0), for
    /// data-plane components constructed without a control plane.
    pub fn fixed_default() -> ConfigHandle {
        ConfigHandle {
            cell: Arc::new(ConfigCell::new()),
        }
    }
}

type Callback = Box<dyn Fn(&Config, &ConfigDiff) + Send + Sync>;
type Precheck = Box<dyn Fn(&Config) -> Result<(), ConfigError> + Send + Sync>;

struct Subscriber {
    name: &'static str,
    apply: Callback,
}

struct PlaneInner {
    cell: Arc<ConfigCell>,
    counters: ReconfigCounters,
    /// Serializes `apply` end to end so subscribers observe generations in
    /// publish order. Holds the subscriber list; registration and apply
    /// contend on the same lock, which is fine — both are control-path.
    subscribers: Mutex<Vec<Subscriber>>,
    prechecks: Mutex<Vec<Precheck>>,
}

/// The control-plane handle. Clones share the same cell, counters and
/// subscriber list.
#[derive(Clone)]
pub struct ControlPlane {
    inner: Arc<PlaneInner>,
}

impl ControlPlane {
    /// A plane serving [`Config::DEFAULT`] at generation 0.
    pub fn new() -> ControlPlane {
        ControlPlane {
            inner: Arc::new(PlaneInner {
                cell: Arc::new(ConfigCell::new()),
                counters: ReconfigCounters::new(),
                subscribers: Mutex::new(Vec::new()),
                prechecks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A read handle for data-plane components.
    pub fn handle(&self) -> ConfigHandle {
        ConfigHandle {
            cell: Arc::clone(&self.inner.cell),
        }
    }

    /// A copy of the current config (starting point for a modified copy).
    pub fn config(&self) -> Config {
        self.inner.cell.read().config
    }

    /// Current generation (0 until the first successful `apply`).
    pub fn generation(&self) -> u64 {
        self.inner.cell.generation()
    }

    /// Control-plane counter snapshot (applied/rejected/generation).
    pub fn stats(&self) -> ReconfigStats {
        self.inner.counters.snapshot()
    }

    /// Registers a subscriber run (in registration order) after every
    /// successful publish. The callback receives the new config and the
    /// diff against the previous generation; it must not call back into
    /// `apply` (the plane lock is held).
    pub fn subscribe(
        &self,
        name: &'static str,
        apply: impl Fn(&Config, &ConfigDiff) + Send + Sync + 'static,
    ) {
        self.inner
            .subscribers
            .lock()
            .unwrap()
            .push(Subscriber { name, apply: Box::new(apply) });
    }

    /// Registers a validation hook run before publish; any error rejects
    /// the candidate and leaves the old generation serving.
    pub fn add_precheck(
        &self,
        check: impl Fn(&Config) -> Result<(), ConfigError> + Send + Sync + 'static,
    ) {
        self.inner.prechecks.lock().unwrap().push(Box::new(check));
    }

    /// Validates, publishes, and fans `config` out to every subscriber.
    /// On any validation failure nothing is published: readers keep seeing
    /// the previous generation, and `stats().rejected` increments.
    pub fn apply(&self, config: Config) -> Result<u64, ConfigError> {
        // One lock serializes the whole apply: validate → publish → notify.
        let subscribers = self.inner.subscribers.lock().unwrap();

        if let Err(e) = config.validate() {
            self.inner.counters.record_rejected();
            return Err(e);
        }
        for check in self.inner.prechecks.lock().unwrap().iter() {
            if let Err(e) = check(&config) {
                self.inner.counters.record_rejected();
                return Err(e);
            }
        }

        let old = self.inner.cell.read().config;
        let diff = config.diff(&old);

        let flow = TraceId::mint();
        let generation = self.inner.cell.publish(config);
        pyjama_trace::emit(flow, Stage::ConfigPublish, generation as u32);

        let snap = self.inner.cell.read();
        for (i, sub) in subscribers.iter().enumerate() {
            (sub.apply)(&snap.config, &diff);
            let _ = sub.name; // names surface through /admin stats later
            pyjama_trace::emit(flow, Stage::ConfigApply, i as u32);
            self.inner.counters.record_subscriber_notified();
        }
        self.inner.counters.record_applied(generation);
        Ok(generation)
    }

    /// Wires a work-stealing pool to `Config::workers`: registers a
    /// precheck (the requested size must fit the pool's fixed slot
    /// capacity) and a subscriber that resizes the pool whenever the
    /// worker count changes. The pool is held weakly — dropping it
    /// elsewhere simply makes the subscriber a no-op. Attachment does not
    /// resize; only subsequent `apply` calls do.
    pub fn attach_worker_target(&self, target: &Arc<WorkerTarget>) {
        let weak: Weak<WorkerTarget> = Arc::downgrade(target);
        let cap_probe = weak.clone();
        self.add_precheck(move |cfg| match cap_probe.upgrade() {
            Some(t) if cfg.workers > t.capacity() => Err(ConfigError::ExceedsPoolCapacity {
                requested: cfg.workers,
                capacity: t.capacity(),
            }),
            _ => Ok(()),
        });
        self.subscribe("worker-pool", move |cfg, diff| {
            if !diff.workers {
                return;
            }
            if let Some(t) = weak.upgrade() {
                // The precheck bounded cfg.workers by capacity, so the
                // only residual failure is a concurrent shutdown — losing
                // the resize then is correct.
                let _ = t.resize(cfg.workers);
            }
        });
    }

    /// Wires the runtime spin budget to `Config::spin_budget`: when the
    /// override changes, the new value takes effect on the next
    /// `spin::budget()` call in every pool.
    pub fn attach_spin_budget(&self) {
        self.subscribe("spin-budget", |cfg, diff| {
            if diff.spin_budget {
                pyjama_omp::spin::set_spin_budget(cfg.spin_budget);
            }
        });
    }
}

impl Default for ControlPlane {
    fn default() -> Self {
        ControlPlane::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn apply_publishes_and_bumps_generation() {
        let plane = ControlPlane::new();
        assert_eq!(plane.generation(), 0);
        let mut cfg = plane.config();
        cfg.workers = 2;
        let generation = plane.apply(cfg).expect("valid config");
        assert_eq!(generation, 1);
        assert_eq!(plane.handle().config().workers, 2);
        let s = plane.stats();
        assert_eq!((s.applied, s.rejected, s.generation), (1, 0, 1));
    }

    #[test]
    fn invalid_config_rejected_old_generation_serves() {
        let plane = ControlPlane::new();
        let mut cfg = plane.config();
        cfg.workers = 3;
        plane.apply(cfg).unwrap();

        let mut bad = plane.config();
        bad.workers = 0;
        assert_eq!(plane.apply(bad), Err(ConfigError::ZeroWorkers));
        assert_eq!(plane.handle().config().workers, 3);
        assert_eq!(plane.generation(), 1);
        let s = plane.stats();
        assert_eq!((s.applied, s.rejected), (1, 1));
    }

    #[test]
    fn subscribers_see_new_config_and_diff_in_order() {
        let plane = ControlPlane::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for tag in ["a", "b"] {
            let seen = Arc::clone(&seen);
            plane.subscribe(if tag == "a" { "a" } else { "b" }, move |cfg, diff| {
                seen.lock().unwrap().push((tag, cfg.workers, diff.workers));
            });
        }
        let mut cfg = plane.config();
        cfg.workers = 7;
        plane.apply(cfg).unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(&*seen, &[("a", 7, true), ("b", 7, true)]);
        assert_eq!(plane.stats().subscribers_notified, 2);
    }

    #[test]
    fn precheck_rejection_skips_publish_and_subscribers() {
        let plane = ControlPlane::new();
        let notified = Arc::new(AtomicUsize::new(0));
        let n = Arc::clone(&notified);
        plane.subscribe("counter", move |_, _| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        plane.add_precheck(|cfg| {
            if cfg.workers > 8 {
                Err(ConfigError::ExceedsPoolCapacity { requested: cfg.workers, capacity: 8 })
            } else {
                Ok(())
            }
        });
        let mut cfg = plane.config();
        cfg.workers = 16;
        assert!(matches!(
            plane.apply(cfg),
            Err(ConfigError::ExceedsPoolCapacity { requested: 16, capacity: 8 })
        ));
        assert_eq!(plane.generation(), 0);
        assert_eq!(notified.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn handle_reads_are_shared_across_clones() {
        let plane = ControlPlane::new();
        let h1 = plane.handle();
        let h2 = plane.clone().handle();
        let mut cfg = plane.config();
        cfg.admission_threshold = 42;
        plane.apply(cfg).unwrap();
        assert_eq!(h1.config().admission_threshold, 42);
        assert_eq!(h2.read().generation, 1);
    }

    #[test]
    fn fixed_default_handle_serves_defaults() {
        let h = ConfigHandle::fixed_default();
        assert_eq!(h.generation(), 0);
        assert_eq!(h.config(), Config::DEFAULT);
    }
}
