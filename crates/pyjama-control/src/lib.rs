//! Live control plane for the Pyjama-RS event-driven runtime.
//!
//! Long-lived event-driven processes — the paper's GUI pumps and HTTP
//! services — cannot be bounced to retune a worker count or a connection
//! limit. This crate makes reconfiguration *another event in the system*:
//!
//! * [`Config`] — one immutable `Copy` snapshot of every tunable knob
//!   (pool sizes, per-connection limits, reactor sweep interval, spin
//!   budget, admission thresholds), validated as a whole.
//! * [`ConfigCell`] — a hand-rolled, std-only arc-swap in the leaky-epoch
//!   style: readers pay exactly one `Acquire` load (gated ≤ 2 ns/op by the
//!   `overload_shed` bench); replaced snapshots are retired, never freed,
//!   while the cell lives, which is what makes the unguarded `&Config`
//!   sound. See DESIGN.md §5k for the ordering argument and the
//!   pyjama-check model that exercises it.
//! * [`ControlPlane`] — the single write path: validate → diff → publish →
//!   notify subscribers, with a generation counter, `ReconfigCounters`,
//!   and `ConfigPublish`/`ConfigApply` trace stages forming one causal
//!   flow per reconfiguration.
//!
//! Built-in wiring: [`ControlPlane::attach_worker_target`] grows/shrinks a
//! `pyjama-runtime` work-stealing pool live (graceful retire — a removed
//! worker drains its deque into the injector before parking permanently),
//! and [`ControlPlane::attach_spin_budget`] retunes
//! `pyjama_omp::spin::budget()` on the fly. `pyjama-http` consumes a
//! [`ConfigHandle`] for connection limits, the reactor sweep interval, the
//! body cap, and 429 admission shedding, and exposes the plane over an
//! `/admin` HTTP listener.

pub mod cell;
pub mod config;
pub mod plane;

pub use cell::{ConfigCell, Snapshot};
pub use config::{Config, ConfigDiff, ConfigError};
pub use plane::{ConfigHandle, ControlPlane};
