//! Quickstart: the virtual-target model in five minutes.
//!
//! Demonstrates Table II's runtime functions and all four scheduling modes
//! of Table I (`wait`, `nowait`, `name_as`/`wait(tag)`, `await`).
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pyjama::runtime::{Mode, Runtime};
use pyjama::target_virtual;

fn main() {
    // --- Table II: create the virtual targets -------------------------
    let rt = Runtime::new();
    rt.virtual_target_create_worker("worker", 4);
    println!("registered targets: {:?}", rt.target_names());

    // --- Default mode: wait (standard `target` behaviour) -------------
    let t0 = Instant::now();
    rt.target("worker", Mode::Wait, || {
        std::thread::sleep(std::time::Duration::from_millis(30));
    });
    println!("wait    : block finished before continuing ({:?})", t0.elapsed());

    // --- nowait: fire and forget ---------------------------------------
    let t0 = Instant::now();
    let handle = rt.target("worker", Mode::NoWait, || {
        std::thread::sleep(std::time::Duration::from_millis(30));
    });
    println!(
        "nowait  : continued immediately ({:?}), block finished = {}",
        t0.elapsed(),
        handle.is_finished()
    );
    handle.wait();

    // --- name_as + wait(tag): batch synchronisation --------------------
    let sum = Arc::new(AtomicU64::new(0));
    for i in 0..8u64 {
        let sum = Arc::clone(&sum);
        rt.target("worker", Mode::name_as("batch"), move || {
            sum.fetch_add(i, Ordering::Relaxed);
        });
    }
    rt.wait_tag("batch");
    println!("name_as : all 8 tagged blocks done, sum = {}", sum.load(Ordering::Relaxed));

    // --- await: logical barrier ----------------------------------------
    // Off an event loop this behaves like wait; on an EDT it would pump
    // other events (see the image_pipeline example).
    rt.target("worker", Mode::Await, || {
        std::thread::sleep(std::time::Duration::from_millis(10));
    });
    println!("await   : completed");

    // --- The directive-style macro -------------------------------------
    let h = target_virtual!(rt, "worker", nowait, {
        // offloaded, shares the surrounding data context
    });
    h.wait();
    println!("macro   : target_virtual!(rt, \"worker\", nowait, {{ .. }}) ok");

    // --- Typed results via submit ---------------------------------------
    let fut = rt.submit("worker", || (1..=10u64).product::<u64>()).unwrap();
    println!("submit  : 10! = {}", fut.join());
}
