//! The Pyjama compiler as a command-line tool: compile and run `.pj`
//! files, optionally printing the §IV-A restructured source or the
//! register bytecode the VM executes.
//!
//! ```text
//! cargo run --release --example pj_run -- examples/pj/figure6.pj
//! cargo run --release --example pj_run -- --emit examples/pj/figure6.pj
//! cargo run --release --example pj_run -- --sequential examples/pj/pi.pj
//! cargo run --release --example pj_run -- --engine=interp examples/pj/fib.pj
//! cargo run --release --example pj_run -- --dump-bytecode examples/pj/fib.pj
//! ```
//!
//! `--emit` prints the TargetRegion-restructured Java-like source instead
//! of (well, before) running; `--sequential` runs with directives ignored
//! — a quick check of the sequential-equivalence guarantee on any program.
//! `--engine=vm|interp` picks the execution engine (default: the register
//! bytecode VM; `interp` is the tree-walking oracle), and `--dump-bytecode`
//! disassembles the lowered module before running it.

use std::sync::Arc;

use pyjama::compiler::{compile_program, parse, transform, Engine, ExecConfig, Interpreter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut emit = false;
    let mut sequential = false;
    let mut dump = false;
    let mut engine = Engine::default();
    let mut path = None;
    for a in &args {
        match a.as_str() {
            "--emit" => emit = true,
            "--sequential" => sequential = true,
            "--dump-bytecode" => dump = true,
            "--engine=vm" => engine = Engine::Vm,
            "--engine=interp" => engine = Engine::Interp,
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: pj_run [--emit] [--sequential] [--dump-bytecode] \
             [--engine=vm|interp] <file.pj>"
        );
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };

    if emit {
        let t = transform(&program);
        println!(
            "// {} target region(s) extracted by the source-to-source compiler\n",
            t.regions.len()
        );
        print!("{}", t.to_java_like_source());
        println!("// ---- execution ----");
    }

    if dump {
        print!("{}", compile_program(&program).dump());
        println!("// ---- execution ----");
    }

    let config = ExecConfig {
        engine,
        ignore_directives: sequential,
        ..Default::default()
    };
    match Interpreter::new(Arc::new(program)).run(&config) {
        Ok(out) => {
            for line in &out.output {
                println!("{line}");
            }
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        }
    }
}
