//! A bursty GUI dashboard: many events arrive while a long computation is
//! in flight — the scenario of the paper's Figure 1 and §V-A.
//!
//! Clicking "analyse" starts a MonteCarlo simulation. With the naive
//! sequential handler the EDT would be unresponsive for its whole duration
//! (Figure 1(i)); with `target virtual(worker) await` the EDT keeps
//! dispatching the ticker events that arrive meanwhile (Figure 1(ii)),
//! which this example demonstrates by *counting* them.
//!
//! Run with: `cargo run --release --example gui_dashboard`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::gui::{ConfinementPolicy, Gui};
use pyjama::kernels::montecarlo::{montecarlo_seq, McParams};
use pyjama::runtime::{Mode, Runtime};

fn run_scenario(offload: bool) -> (u64, Duration) {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);

    let status = gui.label("status");
    let progress = gui.progress_bar("progress");
    let analyse = gui.button("analyse");
    let ticks_during_compute = Arc::new(AtomicU64::new(0));

    {
        let rt = Arc::clone(&rt);
        let status = Arc::clone(&status);
        let progress = Arc::clone(&progress);
        analyse.on_click(move || {
            status.set_text("analysing…");
            let params = McParams::default();
            let compute = move || montecarlo_seq(&params, 3_000);
            let result = if offload {
                // `//#omp target virtual(worker) await` — the EDT pumps
                // ticker events while the simulation runs on the worker.
                let slot = Arc::new(std::sync::Mutex::new(None));
                let s2 = Arc::clone(&slot);
                rt.target("worker", Mode::Await, move || {
                    *s2.lock().unwrap() = Some(compute());
                });
                let r = slot.lock().unwrap().take().unwrap();
                r
            } else {
                // Sequential: the EDT computes and cannot dispatch ticks.
                compute()
            };
            progress.set_value(100);
            status.set_text(format!(
                "call price ≈ {:.3} over {} paths",
                result.call_price, result.paths
            ));
        });
    }

    // A ticker that fires every 2 ms, counting how many ticks the EDT
    // manages to dispatch while the analysis runs.
    let analysing = Arc::new(AtomicU64::new(1));
    {
        let ticks = Arc::clone(&ticks_during_compute);
        let analysing = Arc::clone(&analysing);
        let handle = gui.edt_handle();
        fn schedule(
            handle: pyjama::events::EventLoopHandle,
            ticks: Arc<AtomicU64>,
            analysing: Arc<AtomicU64>,
        ) {
            let h2 = handle.clone();
            handle.post_delayed(Duration::from_millis(2), move || {
                if analysing.load(Ordering::SeqCst) == 1 {
                    ticks.fetch_add(1, Ordering::SeqCst);
                    schedule(h2, ticks, analysing);
                }
            });
        }
        schedule(handle, ticks, analysing);
    }

    let t0 = Instant::now();
    gui.click(&analyse);
    // NOTE: a drain() barrier is useless here — with `await` the EDT pumps
    // *other* events (including a barrier!) while the handler is parked,
    // which is the whole point. Poll the visible result instead.
    while !status.text().starts_with("call price") {
        assert!(t0.elapsed() < Duration::from_secs(30), "handler stalled: {}", status.text());
        std::thread::sleep(Duration::from_millis(1));
    }
    let handler_wall = t0.elapsed();
    analysing.store(0, Ordering::SeqCst);
    gui.drain();

    let ticks = ticks_during_compute.load(Ordering::SeqCst);
    gui.shutdown();
    (ticks, handler_wall)
}

fn main() {
    let (seq_ticks, seq_wall) = run_scenario(false);
    let (await_ticks, await_wall) = run_scenario(true);

    println!("scenario              ticker events dispatched   handler wall-clock");
    println!("sequential handler    {seq_ticks:>10}                 {seq_wall:>10.1?}");
    println!("target virtual await  {await_ticks:>10}                 {await_wall:>10.1?}");
    println!();
    if await_ticks > seq_ticks {
        println!(
            "→ with `await`, the EDT dispatched {}x more events during the same computation",
            if seq_ticks == 0 { await_ticks } else { await_ticks / seq_ticks.max(1) }
        );
    }
    println!("→ this is Figure 1(i) vs 1(ii): identical handler code, one directive added");
}
