//! The paper's Figure 2 — "a time-consuming computation involves
//! background components (S1 and S3), with a foreground progress update
//! (S2), before a concluding foreground computation (S4)" — implemented
//! three ways:
//!
//! 1. `SwingWorker` (the paper's Figure 3),
//! 2. C#-APM-style continuation passing (the paper's Figure 4, via
//!    `Runtime::submit_then`),
//! 3. Pyjama directives (the paper's proposal) — note how only this
//!    version reads top-to-bottom like the sequential logic.
//!
//! All three must produce the same panel log. Progress updates flow
//! through a coalescing poster, like Swing's repaint coalescing.
//!
//! Run with: `cargo run --release --example progress_worker`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pyjama::baselines::{SwingWorker, SwingWorkerPool};
use pyjama::events::Coalescer;
use pyjama::gui::{ConfinementPolicy, Gui, Panel, ProgressBar};
use pyjama::kernels::series::series_seq;
use pyjama::runtime::{Mode, Runtime};

/// S1: first half of the computation.
fn s1() -> Vec<(f64, f64)> {
    series_seq(24)
}

/// S3: second half, building on S1.
fn s3(first: &[(f64, f64)]) -> f64 {
    first.iter().map(|(a, b)| a.abs() + b.abs()).sum()
}

fn wait_for(flag: &AtomicBool) {
    let t0 = std::time::Instant::now();
    while !flag.load(Ordering::SeqCst) {
        assert!(t0.elapsed() < Duration::from_secs(30), "variant stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn report(name: &str, panel: &Arc<Panel>, bar: &Arc<ProgressBar>) {
    println!("— {name}:");
    for m in panel.messages() {
        println!("    {m}");
    }
    println!("    progress history: {:?}", bar.history());
}

fn main() {
    // ---------------------------------------------------------- SwingWorker
    {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let panel = gui.panel("panel");
        let bar = gui.progress_bar("bar");
        let pool = SwingWorkerPool::default_pool();
        let done = Arc::new(AtomicBool::new(false));

        let p2 = Arc::clone(&panel);
        let b2 = Arc::clone(&bar);
        let d2 = Arc::clone(&done);
        SwingWorker::<f64, u8>::new(gui.edt_handle())
            .process(move |chunks| {
                // S2 on the EDT, coalesced chunks.
                for pct in chunks {
                    b2.set_value(pct);
                }
            })
            .done(move |sum| {
                // S4 on the EDT.
                p2.show_msg(format!("S4: total {sum:.3}"));
                d2.store(true, Ordering::SeqCst);
            })
            .execute(&pool, |publisher| {
                let first = s1(); // S1 in background
                publisher.publish(50); // triggers S2
                s3(&first) // S3 in background
            });
        wait_for(&done);
        report("SwingWorker (Figure 3)", &panel, &bar);
        gui.shutdown();
    }

    // ------------------------------------------- continuation passing (APM)
    {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let panel = gui.panel("panel");
        let bar = gui.progress_bar("bar");
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
        rt.virtual_target_create_worker("worker", 2);
        let done = Arc::new(AtomicBool::new(false));

        // The fragmentation the paper criticises: S1's callback schedules
        // S2+BeginS3, whose callback schedules S4.
        let rt2 = Arc::clone(&rt);
        let p2 = Arc::clone(&panel);
        let b2 = Arc::clone(&bar);
        let d2 = Arc::clone(&done);
        rt.submit_then("worker", s1, "edt", move |first| {
            b2.set_value(50); // S2
            let p3 = Arc::clone(&p2);
            let d3 = Arc::clone(&d2);
            rt2.submit_then("worker", move || s3(&first), "edt", move |sum| {
                p3.show_msg(format!("S4: total {sum:.3}")); // S4
                d3.store(true, Ordering::SeqCst);
            })
            .unwrap();
        })
        .unwrap();
        wait_for(&done);
        report("Continuation passing (Figure 4)", &panel, &bar);
        gui.shutdown();
    }

    // ----------------------------------------------------- Pyjama directives
    {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let panel = gui.panel("panel");
        let bar = gui.progress_bar("bar");
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
        rt.virtual_target_create_worker("worker", 2);
        let coalescer = Arc::new(Coalescer::new(gui.edt_handle()));
        let done = Arc::new(AtomicBool::new(false));

        // The whole handler, in sequential order, one offload directive:
        // //#omp target virtual(worker) nowait
        let rt2 = Arc::clone(&rt);
        let p2 = Arc::clone(&panel);
        let b2 = Arc::clone(&bar);
        let c2 = Arc::clone(&coalescer);
        let d2 = Arc::clone(&done);
        rt.target("worker", Mode::NoWait, move || {
            let first = s1(); // S1
            // S2: //#omp target virtual(edt) nowait — broadcast progress,
            // coalesced like a repaint.
            let b3 = Arc::clone(&b2);
            c2.post("progress", move || b3.set_value(50));
            let sum = s3(&first); // S3
            // S4: //#omp target virtual(edt)
            rt2.target("edt", Mode::Wait, move || {
                p2.show_msg(format!("S4: total {sum:.3}"));
                d2.store(true, Ordering::SeqCst);
            });
        });
        wait_for(&done);
        gui.drain();
        report("Pyjama directives (§III)", &panel, &bar);
        gui.shutdown();
    }

    println!("\n→ identical logic and results; only the code shape differs —");
    println!("  the directive version keeps the sequential structure (the paper's point).");
}
