//! The paper's Figure 6, end to end: a button click triggers a download +
//! image-processing pipeline that hops between the EDT and a worker target.
//!
//! ```java
//! void buttonOnClick() {
//!     Panel.showMsg("Started EDT handling");
//!     Info info = Panel.collectInput();
//!     //#omp target virtual(worker) nowait
//!     {
//!         int hscode = getHashCode(info);
//!         downloadAndCompute(hscode);
//!         //#omp target virtual(edt)
//!         Panel.showMsg("Finished!");
//!     }
//! }
//! ```
//!
//! The "download" is simulated with a sleep, the "image processing" with
//! the RayTracer kernel, and the GUI with the thread-confined toolkit — a
//! wrong-thread widget access would panic, so running this example *is*
//! the confinement proof.
//!
//! Run with: `cargo run --release --example image_pipeline`

use std::sync::Arc;
use std::time::Duration;

use pyjama::gui::{ConfinementPolicy, Gui, Image};
use pyjama::kernels::raytracer::{render_seq, Scene};
use pyjama::runtime::{Mode, Runtime};

fn main() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);

    let panel = gui.panel("main-panel");
    let input = gui.text_field("query");
    let button = gui.button("render");

    // Wire the click handler — the body is the Figure 6 callback.
    {
        let rt = Arc::clone(&rt);
        let panel = Arc::clone(&panel);
        let input = Arc::clone(&input);
        button.on_click(move || {
            // Runs on the EDT (the toolkit dispatches clicks there).
            panel.show_msg("Started EDT handling");
            let info = input.content(); // Panel.collectInput()

            // //#omp target virtual(worker) nowait
            let rt2 = Arc::clone(&rt);
            let panel2 = Arc::clone(&panel);
            rt.target("worker", Mode::NoWait, move || {
                let hscode = fnv(&info); // getHashCode(info)
                let img = download_and_compute(hscode, &rt2, &panel2);
                // //#omp target virtual(edt)  — display + final message
                let panel3 = Arc::clone(&panel2);
                rt2.target("edt", Mode::Wait, move || {
                    panel3.display_img(img);
                    panel3.show_msg("Finished!");
                });
            });
        });
    }

    // Simulate the user: type a query, click the button.
    {
        let input = Arc::clone(&input);
        gui.invoke_and_wait(move || input.set_content("sunset over spheres"));
    }
    gui.click(&button);

    // Wait for the pipeline to complete.
    let t0 = std::time::Instant::now();
    while panel.image().is_none() {
        assert!(t0.elapsed() < Duration::from_secs(30), "pipeline stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    gui.drain();

    println!("panel log:");
    for msg in panel.messages() {
        println!("  {msg}");
    }
    let img = panel.image().unwrap();
    println!("rendered image: {}x{} ({} bytes)", img.width, img.height, img.pixels.len());
    println!(
        "EDT dispatched {} events; confinement violations: {}",
        gui.queue_latency().count(),
        gui.confinement().violation_count()
    );
    gui.shutdown();
}

/// `downloadAndCompute(hs)`: network fetch (simulated) + image processing
/// (a real ray-trace), with a progress message marshalled to the EDT.
fn download_and_compute(
    hscode: u64,
    rt: &Arc<Runtime>,
    panel: &Arc<pyjama::gui::Panel>,
) -> Image {
    // networkDownload(hs) — latency, off the EDT.
    std::thread::sleep(Duration::from_millis(50));

    // Interim progress: back on the EDT, nowait (broadcast-style).
    let panel2 = Arc::clone(panel);
    rt.target("edt", Mode::NoWait, move || {
        panel2.show_msg("Download complete, converting…");
    });

    // formatConvert(buf) — the RayTracer kernel as the pixel-crunching
    // stand-in; the hash seeds the scene size so input affects output.
    let n = 32 + (hscode % 3) as usize * 16;
    let scene = Scene::benchmark(16);
    let pixels = render_seq(&scene, n);
    Image::new(n, n, pixels)
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
