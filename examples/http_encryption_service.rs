//! The §V-B case study: an HTTP service "that provides data encryption to
//! web users", served Jetty-style and Pyjama-style, under a closed-loop
//! virtual-user load.
//!
//! Run with: `cargo run --release --example http_encryption_service`
//!
//! Pass `--trace trace.json` to record the causal event trace and export
//! it as Chrome `about://tracing` JSON (open chrome://tracing and load the
//! file; each request's accept → offload → respond chain is one flow).

use std::sync::Arc;

use pyjama::http::{HttpServer, LoadGenerator, Response, ServingPolicy};
use pyjama::kernels::crypt::{encrypt_seq, IdeaKey};
use pyjama::runtime::Runtime;

fn encryption_handler() -> impl Fn(&pyjama::http::Request) -> Response + Send + Sync + 'static {
    let key = IdeaKey::benchmark_key();
    move |req: &pyjama::http::Request| {
        // Pad to the IDEA block size, encrypt, return ciphertext.
        let mut data = req.body.clone();
        while !data.len().is_multiple_of(8) {
            data.push(0);
        }
        // A larger working set to make each request CPU-bound, like the
        // paper's kernel-backed requests.
        let mut work = data.repeat(64);
        encrypt_seq(&key, &mut work);
        Response::ok(work[..data.len().max(8)].to_vec())
    }
}

fn trace_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            pyjama::trace::enable();
            return Some(args.next().expect("--trace requires a file path"));
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            pyjama::trace::enable();
            return Some(p.to_string());
        }
    }
    None
}

fn main() {
    let trace_path = trace_arg();
    let users = 16;
    let requests_per_user = 20;
    let payload = vec![0x5Au8; 1024];

    // --- Jetty-style: fixed pool, thread-per-request -------------------
    let mut jetty = HttpServer::start(
        ServingPolicy::JettyPool { threads: 4 },
        encryption_handler(),
    )
    .expect("start jetty-style server");
    let report_jetty =
        LoadGenerator::new(users, requests_per_user, "/encrypt", payload.clone()).run(jetty.addr());
    jetty.shutdown();

    // --- Pyjama-style: acceptor + virtual target offload ----------------
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 4);
    let mut pyjama_srv = HttpServer::start(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        encryption_handler(),
    )
    .expect("start pyjama server");
    let report_pyjama =
        LoadGenerator::new(users, requests_per_user, "/encrypt", payload).run(pyjama_srv.addr());
    pyjama_srv.shutdown();

    println!("encryption service under {users} virtual users × {requests_per_user} requests\n");
    println!(
        "{:<22} {:>12} {:>8} {:>16} {:>14} {:>12}",
        "policy", "throughput", "failed", "mean response", "p99 response", "completed"
    );
    for (name, r) in [("jetty-pool(4)", &report_jetty), ("pyjama-virtual(4)", &report_pyjama)] {
        println!(
            "{:<22} {:>8.1}/s {:>8} {:>16.2?} {:>14.2?} {:>12}",
            name, r.throughput, r.failed, r.mean_response, r.p99_response, r.completed
        );
    }
    println!("\n→ both policies saturate the same 4 compute threads; the shape matches");
    println!("  Figure 9's finding that Pyjama's virtual targets keep pace with Jetty.");

    if let Some(path) = trace_path {
        pyjama::trace::disable();
        let trace = pyjama::trace::collect();
        trace.write_chrome(&path).expect("write chrome trace");
        println!(
            "\nwrote {} trace events from {} threads to {path} — load it in chrome://tracing",
            trace.len(),
            trace.threads.len()
        );
    }
}
