//! The source-to-source compiler on the paper's §IV-A example: shows the
//! TargetRegion restructuring and the register bytecode the VM actually
//! executes, then runs the program on the real runtime — once with
//! directives enabled and once with them ignored — and checks both produce
//! the same output (the sequential-equivalence guarantee).
//!
//! Run with: `cargo run --release --example compiler_demo`

use std::sync::Arc;

use pyjama::compiler::{compile_program, parse, transform, ExecConfig, Interpreter};

const SOURCE: &str = r#"
fn compute_half1(log) {
    push(log, "half1 on " + thread_name());
}

fn compute_half2(log) {
    push(log, "half2 on " + thread_name());
}

fn main() {
    let log = arr();
    push(log, "Start Processing Task!");
    //#omp target virtual(worker) await
    {
        compute_half1(log);
        //#omp target virtual(edt) nowait
        {
            push(log, "Task half finished");
        }
        compute_half2(log);
    }
    push(log, "Task finished");
    for i in 0..len(log) {
        print(log[i]);
    }
}
"#;

fn main() {
    println!("── PJ source ──────────────────────────────────────────────");
    println!("{}", SOURCE.trim());

    let program = parse(SOURCE).expect("parse");

    println!("\n── after the §IV-A TargetRegion restructuring ─────────────");
    let transformed = transform(&program);
    print!("{}", transformed.to_java_like_source());
    println!(
        "({} target regions extracted)",
        transformed.regions.len()
    );

    println!("── lowered register bytecode (what the VM runs) ───────────");
    let module = compile_program(&program);
    print!("{}", module.dump());
    println!(
        "({} chunks: each function, plus one closure per directive body)\n",
        module.chunks.len()
    );

    println!("── executing with directives ENABLED ──────────────────────");
    let interp = Interpreter::new(Arc::new(program));
    let with = interp.run(&ExecConfig::default()).expect("run");
    for line in &with.output {
        println!("  {line}");
    }

    println!("\n── executing with directives IGNORED (plain comments) ─────");
    let without = interp
        .run(&ExecConfig {
            ignore_directives: true,
            ..Default::default()
        })
        .expect("run sequential");
    for line in &without.output {
        println!("  {line}");
    }

    // The *sequence of messages* is identical; only the executing threads
    // differ. (thread_name() output varies, so compare message counts and
    // the thread-independent lines.)
    assert_eq!(with.output.len(), without.output.len());
    assert_eq!(with.output[0], "Start Processing Task!");
    assert_eq!(without.output[0], "Start Processing Task!");
    println!("\n→ sequential equivalence holds: same logic, with and without directives");
}
