//! # Pyjama-RS
//!
//! A Rust reproduction of *Towards an Event-Driven Programming Model for
//! OpenMP* (Fan, Sinnen, Giacaman — ICPP 2016).
//!
//! This umbrella crate re-exports the full system:
//!
//! * [`runtime`] — the paper's contribution: **virtual target** executors and
//!   the `target virtual(...)` scheduling modes (`wait`, `nowait`,
//!   `name_as`/`wait(tag)`, `await`), per §III–§IV.
//! * [`events`] — the event-loop / event-dispatch-thread (EDT) substrate,
//!   including the re-entrant pumping the `await` mode relies on.
//! * [`omp`] — a classic fork-join OpenMP substrate (parallel regions,
//!   worksharing loops, reductions, tasks) used both by the parallel kernels
//!   and by the paper's "synchronous parallel" baseline.
//! * [`gui`] — a Swing-like, thread-confined widget toolkit simulation.
//! * [`kernels`] — the Java Grande kernels the evaluation uses: Crypt,
//!   Series, MonteCarlo, RayTracer.
//! * [`baselines`] — SwingWorker-style, ExecutorService-style and
//!   thread-per-request baselines (Figures 3–4, §II).
//! * [`http`] — the HTTP encryption-service case study (§V-B).
//! * [`compiler`] — a source-to-source compiler for the PJ mini-language
//!   with `//#omp` directives, reproducing the Section IV.A restructuring.
//! * [`metrics`] — response-time / throughput / EDT-occupancy measurement.
//! * [`check`] — a loom-style deterministic interleaving checker for the
//!   runtime's lock-free core (Chase–Lev deque, eventcount parker, pool
//!   join), with replayable failing schedules.
//!
//! ## Quickstart
//!
//! ```
//! use pyjama::runtime::{Runtime, Mode};
//!
//! let rt = Runtime::new();
//! rt.virtual_target_create_worker("worker", 2);
//!
//! // `target virtual(worker) name_as(job)` … `wait(job)`
//! rt.target("worker", Mode::name_as("job"), || {
//!     // time-consuming work, off the calling thread
//! });
//! rt.wait_tag("job");
//! ```

pub use pyjama_runtime::{target_virtual, wait_tag};

pub use pyjama_baselines as baselines;
pub use pyjama_check as check;
pub use pyjama_compiler as compiler;
pub use pyjama_control as control;
pub use pyjama_events as events;
pub use pyjama_gui as gui;
pub use pyjama_http as http;
pub use pyjama_kernels as kernels;
pub use pyjama_metrics as metrics;
pub use pyjama_omp as omp;
pub use pyjama_runtime as runtime;
pub use pyjama_trace as trace;
