//! Integration: the full GUI stack (gui + events + runtime + kernels +
//! baselines), exercising the responsiveness claims of §V-A.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::baselines::{SwingWorker, SwingWorkerPool};
use pyjama::gui::{ConfinementPolicy, Gui};
use pyjama::kernels::{KernelKind, Workload};
use pyjama::runtime::{Mode, Runtime};

/// Full Figure 6 pipeline on real widgets, worker and EDT, with the
/// confinement checker in Enforce mode — any GUI access off the EDT would
/// panic the test.
#[test]
fn figure6_pipeline_respects_thread_confinement() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);

    let panel = gui.panel("panel");
    let button = gui.button("go");
    {
        let rt = Arc::clone(&rt);
        let panel = Arc::clone(&panel);
        button.on_click(move || {
            panel.show_msg("Started EDT handling");
            let rt2 = Arc::clone(&rt);
            let panel2 = Arc::clone(&panel);
            rt.target("worker", Mode::NoWait, move || {
                let checksum = Workload::tiny(KernelKind::Crypt).run(None);
                let panel3 = Arc::clone(&panel2);
                rt2.target("edt", Mode::Wait, move || {
                    panel3.show_msg(format!("Finished! checksum={checksum:x}"));
                });
            });
        });
    }
    gui.click(&button);
    let t0 = Instant::now();
    while panel.messages().len() < 2 {
        assert!(t0.elapsed() < Duration::from_secs(30), "pipeline stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    let msgs = panel.messages();
    assert_eq!(msgs[0], "Started EDT handling");
    assert!(msgs[1].starts_with("Finished!"));
    assert_eq!(gui.confinement().violation_count(), 0);
    gui.shutdown();
}

/// Offloading with `nowait` leaves the EDT free: a burst of clicks is all
/// acknowledged (first GUI update) long before the kernels finish.
#[test]
fn nowait_offload_keeps_edt_responsive_under_burst() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);

    let acknowledged = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let button = gui.button("go");
    {
        let rt = Arc::clone(&rt);
        let ack = Arc::clone(&acknowledged);
        let done = Arc::clone(&completed);
        button.on_click(move || {
            ack.fetch_add(1, Ordering::SeqCst); // immediate GUI feedback
            let done = Arc::clone(&done);
            rt.target("worker", Mode::NoWait, move || {
                Workload::tiny(KernelKind::Series).run(None);
                done.fetch_add(1, Ordering::SeqCst);
            });
        });
    }

    const BURST: u64 = 12;
    for _ in 0..BURST {
        gui.click(&button);
    }
    // All acknowledgements arrive quickly (EDT never blocked on a kernel)…
    let t0 = Instant::now();
    while acknowledged.load(Ordering::SeqCst) < BURST {
        assert!(t0.elapsed() < Duration::from_secs(5), "EDT blocked");
        std::thread::sleep(Duration::from_millis(1));
    }
    // …even though the kernels may still be running.
    let t0 = Instant::now();
    while completed.load(Ordering::SeqCst) < BURST {
        assert!(t0.elapsed() < Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(2));
    }
    gui.shutdown();
}

/// SwingWorker baseline and Pyjama produce identical kernel results — the
/// offloading strategy must not change computation outcomes.
#[test]
fn baselines_and_pyjama_agree_on_kernel_results() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);
    let pool = SwingWorkerPool::new(2);

    let workload = Workload::tiny(KernelKind::RayTracer);
    let expected = workload.run(None);

    // Via SwingWorker:
    let sw_result = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&sw_result);
    SwingWorker::<u64, ()>::new(gui.edt_handle())
        .done(move |v| {
            r2.store(v, Ordering::SeqCst);
        })
        .execute(&pool, move |_| workload.run(None));

    // Via Pyjama submit:
    let fut = rt.submit("worker", move || workload.run(None)).unwrap();
    assert_eq!(fut.join(), expected);

    let t0 = Instant::now();
    while sw_result.load(Ordering::SeqCst) == 0 {
        assert!(t0.elapsed() < Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(sw_result.load(Ordering::SeqCst), expected);
    gui.shutdown();
}

/// The occupancy instrumentation separates foreground from background
/// handling: sequential handlers keep the EDT busy, offloaded ones do not.
#[test]
fn occupancy_distinguishes_foreground_from_background() {
    let run = |offload: bool| -> f64 {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
        rt.virtual_target_create_worker("worker", 2);
        gui.occupancy().start_window();

        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let rt2 = Arc::clone(&rt);
            let done2 = Arc::clone(&done);
            gui.invoke_later(move || {
                if offload {
                    let d = Arc::clone(&done2);
                    rt2.target("worker", Mode::NoWait, move || {
                        std::thread::sleep(Duration::from_millis(10));
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                } else {
                    std::thread::sleep(Duration::from_millis(10));
                    done2.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let t0 = Instant::now();
        while done.load(Ordering::SeqCst) < 5 {
            assert!(t0.elapsed() < Duration::from_secs(30));
            std::thread::sleep(Duration::from_millis(1));
        }
        let f = gui.occupancy().busy_fraction();
        gui.shutdown();
        f
    };
    let fg = run(false);
    let bg = run(true);
    assert!(
        bg < fg,
        "offloaded busy fraction {bg:.3} must be below sequential {fg:.3}"
    );
}
