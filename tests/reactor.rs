//! Integration: the readiness-driven reactor policy — C10K idle keep-alive
//! connections on a bounded pool, a slow-loris client crossing many
//! readiness events, EPOLLOUT re-arm on a partial large-body write,
//! shutdown racing in-flight keep-alive sessions, and one request
//! reconstructed end to end (accept → ready → post → dequeue → run →
//! response) from the exported Chrome trace.
//!
//! Tracing is process-global and the C10K test is resource-heavy, so every
//! test serializes on one lock; each test is still independent.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pyjama::http::{
    http_post, nofile_limit_at_least, ClientConn, HttpServer, Request, Response, ServerOptions,
    ServingPolicy, Status,
};
use pyjama::metrics::ReactorStats;
use pyjama::runtime::Runtime;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn echo(req: &Request) -> Response {
    Response::ok(req.body.clone())
}

fn reactor_server(
    workers: usize,
    opts: ServerOptions,
    handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
) -> (HttpServer, Arc<Runtime>) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", workers);
    let server = HttpServer::start_with(
        ServingPolicy::Reactor {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        opts,
        handler,
    )
    .unwrap();
    (server, rt)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timed out waiting: {what}"
        );
        std::thread::sleep(Duration::from_millis(3));
    }
}

fn wire_of(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    req.write_into(&mut buf);
    buf
}

/// Law + quiescence asserts shared by every test: run on a shut-down
/// server, where no notification can still be between its readiness count
/// and its dispatch/spurious count.
fn assert_law(stats: &ReactorStats) {
    assert!(
        stats.readiness_balanced(),
        "conservation law violated: readiness_events ({}) != dispatched ({}) + spurious_ready ({}): {stats:?}",
        stats.readiness_events,
        stats.dispatched,
        stats.spurious_ready
    );
}

fn connect_retry(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    panic!("connect kept failing: {last:?}");
}

// ---------------------------------------------------------------------------
// C10K: the acceptance-criterion test. Tens of thousands of keep-alive
// connections on a 4-worker pool: every connection serves a request, all of
// them then sit idle (holding no worker), a probe request is still served
// promptly, and a second full wave goes through. The conservation law and
// per-connection accounting are checked on the quiesced server.
// ---------------------------------------------------------------------------

const CLIENT_THREADS: usize = 8;

fn send_wave(socks: &mut [TcpStream], wire: &[u8]) {
    let chunk = socks.len().div_ceil(CLIENT_THREADS).max(1);
    std::thread::scope(|s| {
        for part in socks.chunks_mut(chunk) {
            s.spawn(move || {
                for sock in part.iter_mut() {
                    sock.write_all(wire).unwrap();
                }
            });
        }
    });
}

fn read_wave(socks: &[TcpStream], expect: &[u8]) {
    let chunk = socks.len().div_ceil(CLIENT_THREADS).max(1);
    std::thread::scope(|s| {
        for part in socks.chunks(chunk) {
            s.spawn(move || {
                for sock in part.iter() {
                    let mut r = BufReader::with_capacity(512, sock);
                    let resp = Response::read_from(&mut r).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                    assert_eq!(resp.body, expect);
                }
            });
        }
    });
}

#[test]
fn c10k_idle_keepalive_connections_on_a_bounded_pool() {
    let _g = lock();

    // Both endpoints of every loopback connection live in this process:
    // budget 2 fds per connection plus headroom for the listener, the wake
    // pipe, stdio and the probe. `PJ_REACTOR_CONNS` scales the run down for
    // constrained environments (CI smoke uses the bench binary instead).
    const MARGIN: u64 = 256;
    let want: usize = std::env::var("PJ_REACTOR_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let limit = nofile_limit_at_least(want as u64 * 2 + MARGIN);
    let conns = want.min((limit.saturating_sub(MARGIN) / 2) as usize);
    assert!(
        conns >= 1_000,
        "fd limit {limit} too low for a meaningful C10K run"
    );

    let opts = ServerOptions {
        idle_timeout: Duration::from_secs(600),
        io_timeout: Duration::from_secs(10),
        ..ServerOptions::default()
    };
    let (mut server, _rt) = reactor_server(4, opts, echo);
    let addr = server.addr();

    let mut req = Request::new("POST", "/c10k", b"ping".to_vec());
    req.headers.insert("connection", "keep-alive");
    let wire = wire_of(&req);

    // Wave 1: connect and send the first request immediately, so the
    // connect phase and the serve phase overlap like a real ramp-up.
    let per = conns.div_ceil(CLIENT_THREADS);
    let mut socks: Vec<TcpStream> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                let wire = &wire;
                let count = per.min(conns.saturating_sub(t * per));
                s.spawn(move || {
                    let mut v = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut sock = connect_retry(addr);
                        sock.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                        sock.write_all(wire).unwrap();
                        v.push(sock);
                    }
                    v
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(socks.len(), conns);
    read_wave(&socks, b"ping");
    wait_for(|| server.served() >= conns as u64, "wave-1 responses counted");

    // Every connection is now idle on the reactor; none of them may hold a
    // worker: a fresh request must be served promptly by the 4-thread pool.
    let t0 = Instant::now();
    let resp = http_post(addr, "/probe", vec![7; 32]).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "probe stalled {:?} behind {conns} idle connections",
        t0.elapsed()
    );

    // Wave 2: the same sockets all wake at once.
    send_wave(&mut socks, &wire);
    read_wave(&socks, b"ping");
    wait_for(
        || server.served() >= conns as u64 * 2 + 1,
        "wave-2 responses counted",
    );

    assert_eq!(server.errors(), 0, "no connection may fail");
    let conn_stats = server.conn_stats();
    assert_eq!(conn_stats.accepted, conns as u64 + 1);
    assert_eq!(
        conn_stats.reused, conns as u64,
        "every keep-alive socket served its second request on the same connection"
    );
    assert_eq!(conn_stats.timed_out_idle, 0);

    server.shutdown();
    let stats = server.reactor_stats().expect("reactor policy has stats");
    assert_law(&stats);
    assert_eq!(stats.registered, conns as u64 + 1);
    assert!(
        stats.dispatched >= conns as u64,
        "each connection dispatched at least once: {stats:?}"
    );
    assert!(
        stats.rearms_read >= conns as u64,
        "each connection re-armed for its second request: {stats:?}"
    );
    assert_eq!(stats.evicted_idle, 0, "nothing may time out: {stats:?}");
    drop(socks);
}

// ---------------------------------------------------------------------------
// Slow loris: one client dribbles a request byte-at-a-time. Under the old
// policies this pins a pool thread for the whole dribble; under the reactor
// each byte is one readiness event and the (single!) worker stays free to
// serve other clients between bytes.
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_dribble_crosses_readiness_events_without_blocking_the_pool() {
    let _g = lock();
    let (mut server, _rt) = reactor_server(1, ServerOptions::default(), echo);
    let addr = server.addr();

    let mut loris_req = Request::new("POST", "/loris", b"hello".to_vec());
    loris_req.headers.insert("connection", "close");
    let wire = wire_of(&loris_req);

    let done = Arc::new(AtomicBool::new(false));
    let loris = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut sock = connect_retry(addr);
            sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            for byte in &wire {
                sock.write_all(std::slice::from_ref(byte)).unwrap();
                std::thread::sleep(Duration::from_millis(3));
            }
            let mut r = BufReader::with_capacity(512, &sock);
            let resp = Response::read_from(&mut r).unwrap();
            done.store(true, Ordering::Release);
            resp
        })
    };

    // While the dribble is in flight, whole requests flow through the
    // single worker unimpeded.
    let mut probes = 0u32;
    while !done.load(Ordering::Acquire) {
        let t0 = Instant::now();
        let resp = http_post(addr, "/probe", vec![probes as u8; 16]).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "probe blocked behind the loris"
        );
        probes += 1;
    }
    let resp = loris.join().unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.body, b"hello");
    assert!(
        probes >= 3,
        "the pool should have served many probes during the dribble, got {probes}"
    );
    assert_eq!(server.errors(), 0);

    server.shutdown();
    let stats = server.reactor_stats().unwrap();
    assert_law(&stats);
    assert!(
        stats.rearms_read >= 5,
        "a byte-wise dribble must cross many read re-arms: {stats:?}"
    );
}

// ---------------------------------------------------------------------------
// Partial write: a response far larger than the socket buffer forces the
// serving region into WouldBlock mid-write; it must re-arm for write
// readiness (EPOLLOUT) and resume from the exact offset until the body is
// delivered intact.
// ---------------------------------------------------------------------------

#[test]
fn partial_write_rearms_write_interest_and_delivers_large_body() {
    let _g = lock();
    const BODY: usize = 16 << 20;
    fn big_body() -> Vec<u8> {
        (0..BODY).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect()
    }

    let opts = ServerOptions {
        // The write-stall deadline must cover the client's deliberate pause.
        io_timeout: Duration::from_secs(5),
        ..ServerOptions::default()
    };
    let (mut server, _rt) = reactor_server(2, opts, |_req| Response::ok(big_body()));
    let addr = server.addr();

    let mut req = Request::new("GET", "/big", Vec::new());
    req.headers.insert("connection", "close");
    let mut sock = connect_retry(addr);
    sock.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    sock.write_all(&wire_of(&req)).unwrap();

    // Let the writer fill the socket buffer and hit WouldBlock before the
    // client drains anything.
    std::thread::sleep(Duration::from_millis(150));
    let mut raw = Vec::with_capacity(BODY + 1024);
    sock.read_to_end(&mut raw).unwrap();

    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator")
        + 4;
    let head = std::str::from_utf8(&raw[..head_end]).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert_eq!(raw.len() - head_end, BODY, "full body delivered");
    assert_eq!(raw[head_end..], big_body(), "body intact across re-arms");

    wait_for(|| server.served() == 1, "response counted");
    assert_eq!(server.errors(), 0);
    server.shutdown();
    let stats = server.reactor_stats().unwrap();
    assert_law(&stats);
    assert!(
        stats.rearms_write >= 1,
        "a {BODY}-byte body cannot fit the socket buffer in one write: {stats:?}"
    );
}

// ---------------------------------------------------------------------------
// Shutdown racing in-flight keep-alive sessions: repeated rounds of
// clients hammering the server while it shuts down mid-stream. Shutdown
// must drain (no hang, no panic) and the counters must balance afterwards.
// ---------------------------------------------------------------------------

#[test]
fn shutdown_with_inflight_keepalive_connections_quiesces_cleanly() {
    let _g = lock();
    for round in 0..3 {
        let (mut server, _rt) = reactor_server(4, ServerOptions::default(), echo);
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicU64::new(0));

        let clients: Vec<_> = (0..6)
            .map(|c| {
                let stop = Arc::clone(&stop);
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    let mut conn =
                        ClientConn::new(addr).with_read_timeout(Duration::from_secs(2));
                    let mut req = Request::new("POST", "/race", vec![c as u8; 64]);
                    req.headers.insert("connection", "keep-alive");
                    while !stop.load(Ordering::Acquire) {
                        match conn.send(&req) {
                            Ok(resp) => {
                                assert_eq!(resp.status, Status::Ok);
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                // Shutdown closed the socket under us; retry
                                // (and fail fast) until the stop flag lands.
                                conn.disconnect();
                                std::thread::sleep(Duration::from_millis(2));
                            }
                        }
                    }
                })
            })
            .collect();

        wait_for(
            || completed.load(Ordering::Relaxed) >= 50,
            "clients warmed up",
        );
        server.shutdown();
        stop.store(true, Ordering::Release);
        for c in clients {
            c.join().unwrap();
        }

        let stats = server.reactor_stats().unwrap();
        assert_law(&stats);
        assert!(
            server.served() >= 50,
            "round {round}: server lost work: served {} < completed {}",
            server.served(),
            completed.load(Ordering::Relaxed)
        );
    }
}

// ---------------------------------------------------------------------------
// Trace flow: one request under the reactor policy exports as a single
// connected flow — accept → ready → post → dequeue → run → response — and
// the readiness hop is visible in the Chrome trace.
// ---------------------------------------------------------------------------

#[test]
fn one_reactor_request_is_one_connected_flow_in_the_export() {
    let _g = lock();
    pyjama::trace::set_ring_capacity(1 << 14);
    pyjama::trace::enable();
    pyjama::trace::clear();

    let (mut server, _rt) = reactor_server(2, ServerOptions::default(), echo);
    server.reset_conn_stats();

    let resp = http_post(server.addr(), "/traced", vec![0xA5; 256]).unwrap();
    assert_eq!(resp.status, Status::Ok);
    wait_for(|| server.served() == 1, "response counted");
    let conn_stats = server.conn_stats();
    server.shutdown();

    pyjama::trace::disable();
    let trace = pyjama::trace::collect();

    use pyjama::trace::{arg, Stage, TraceId};
    assert_eq!(conn_stats.accepted, 1, "one http_post = one connection");
    let accepted: Vec<TraceId> = trace
        .iter_events()
        .filter(|(_, e)| e.stage == Stage::ConnAccepted)
        .map(|(_, e)| e.id)
        .collect();
    assert_eq!(accepted.len(), 1, "exactly one ConnAccepted event");
    let id = accepted[0];
    assert_ne!(id, TraceId::NONE);

    let chain = trace.events_for(id);
    let ts_of = |stage: Stage| {
        chain
            .iter()
            .find(|(_, e)| e.stage == stage)
            .unwrap_or_else(|| panic!("flow is missing {stage:?}: {chain:#?}"))
            .1
            .ts_ns
    };
    let t_accept = ts_of(Stage::ConnAccepted);
    let t_ready = ts_of(Stage::ReactorReady);
    let t_post = ts_of(Stage::RegionPosted);
    let t_deq = ts_of(Stage::RegionDequeued);
    let t_run = ts_of(Stage::RegionRunBegin);
    let t_resp = ts_of(Stage::ResponseWritten);
    assert!(
        t_accept <= t_ready
            && t_ready <= t_post
            && t_post <= t_deq
            && t_deq <= t_run
            && t_run <= t_resp,
        "stages out of causal order: accept={t_accept} ready={t_ready} \
         post={t_post} dequeue={t_deq} run={t_run} respond={t_resp}"
    );
    let ready = chain
        .iter()
        .find(|(_, e)| e.stage == Stage::ReactorReady)
        .unwrap();
    assert_eq!(
        ready.1.arg,
        arg::READY_READABLE,
        "the request's readiness event is a read"
    );

    use pyjama::trace::validate::{parse_trace_events, validate_chrome_trace};
    let path = std::env::temp_dir().join("pyjama_reactor_trace_test.json");
    trace.write_chrome(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let summary = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(summary.flows >= 1, "the request must export as a flow");
    assert!(
        summary.threads >= 2,
        "reactor and worker are different threads"
    );

    let parsed = parse_trace_events(&json).unwrap();
    let slices: Vec<&str> = parsed
        .iter()
        .filter(|e| e.ph == "X" && e.trace_id == Some(id.raw()))
        .map(|e| e.name.as_str())
        .collect();
    for want in [
        "conn_accepted",
        "reactor_ready(", // decorated with the readiness kind
        "region_posted(",
        "region_dequeued(",
        "region_run",
        "response_written",
    ] {
        assert!(
            slices.iter().any(|n| n.starts_with(want)),
            "exported flow {} lacks a {want} slice; has {slices:?}",
            id.raw()
        );
    }
    let starts = parsed
        .iter()
        .filter(|e| e.ph == "s" && e.id == Some(id.raw()))
        .count();
    let finishes = parsed
        .iter()
        .filter(|e| e.ph == "f" && e.id == Some(id.raw()))
        .count();
    assert_eq!((starts, finishes), (1, 1), "one connected flow per request");

    std::fs::remove_file(&path).ok();
}
