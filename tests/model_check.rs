//! Cross-crate smoke test of the model checker through the umbrella API:
//! the core protocols explored deterministically, a fixed seed set, and
//! the mutation-teeth guarantee (≥4 reintroduced bugs caught, failing
//! schedules replayable). The full scenario matrix lives in
//! `pyjama-check`'s own test suite; this is the tier-1 wiring check.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use pyjama::check::models::config_cell::ModelConfigCell;
use pyjama::check::models::deque::{ModelDeque, ModelSteal};
use pyjama::check::models::parker::ModelWakeSignal;
use pyjama::check::models::pool_join::ModelInjector;
use pyjama::check::models::Mutation;
use pyjama::check::shim;
use pyjama::check::shim::Ordering::SeqCst;
use pyjama::check::Checker;

/// Tier-1 budget: bounded DFS plus a fixed-seed random tail, fast on one
/// CPU. 400+300 is the smallest budget that reliably catches every seeded
/// mutation below (the shutdown drain bug in particular needs the random
/// tail to reach the park→post→shutdown→wake ordering).
fn checker() -> Checker {
    Checker { max_schedules: 400, random_iters: 300, ..Checker::default() }
}

fn deque_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let d = Arc::new(ModelDeque::new(4, mutation));
        let claims = Arc::new(StdMutex::new(Vec::<u64>::new()));
        d.push(7);
        let t = {
            let (d, claims) = (Arc::clone(&d), Arc::clone(&claims));
            shim::thread::spawn("thief", move || {
                for _ in 0..3 {
                    match d.steal() {
                        ModelSteal::Item(v) => {
                            claims.lock().unwrap().push(v);
                            break;
                        }
                        ModelSteal::Empty => break,
                        ModelSteal::Retry => continue,
                    }
                }
            })
        };
        while let Some(v) = d.pop() {
            claims.lock().unwrap().push(v);
        }
        t.join();
        let got = claims.lock().unwrap().clone();
        assert_eq!(got.iter().filter(|&&v| v == 7).count(), 1, "claims: {got:?}");
    }
}

fn parker_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let sig = Arc::new(ModelWakeSignal::new(mutation));
        let finished = Arc::new(shim::AtomicBool::named("finished", false));
        let t = {
            let (sig, finished) = (Arc::clone(&sig), Arc::clone(&finished));
            shim::thread::spawn("completer", move || {
                finished.store(true, SeqCst);
                sig.notify();
            })
        };
        while !finished.load(SeqCst) {
            sig.park();
        }
        t.join();
    }
}

fn shutdown_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let inj = Arc::new(ModelInjector::new(mutation));
        let worker = {
            let inj = Arc::clone(&inj);
            shim::thread::spawn("worker", move || inj.worker_loop())
        };
        // Post from a third thread so the race window (post accepted while
        // the worker is between its empty take and its shutdown-flag read)
        // is actually schedulable against main's shutdown.
        let accepted = Arc::new(StdMutex::new(0usize));
        let poster = {
            let (inj, accepted) = (Arc::clone(&inj), Arc::clone(&accepted));
            shim::thread::spawn("poster", move || {
                if inj.post(1) {
                    *accepted.lock().unwrap() += 1;
                }
            })
        };
        inj.shutdown();
        poster.join();
        worker.join();
        let exec = inj.executed.load(SeqCst);
        assert_eq!(exec, *accepted.lock().unwrap(), "accepted post stranded at shutdown");
    }
}

fn cell_scenario(mutation: Mutation) -> impl Fn() + Send + Sync {
    move || {
        let cell = Arc::new(ModelConfigCell::new(3, mutation));
        let reader = {
            let cell = Arc::clone(&cell);
            shim::thread::spawn("reader", move || {
                for _ in 0..2 {
                    let (generation, payload) = cell.read();
                    assert_eq!(payload, generation + 1, "torn snapshot at gen {generation}");
                }
            })
        };
        cell.publish();
        reader.join();
        assert_eq!(cell.read(), (1, 2));
    }
}

#[test]
fn correct_protocols_pass_deterministic_exploration() {
    let c = checker();
    for (name, f) in [
        ("deque", Box::new(deque_scenario(Mutation::None)) as Box<dyn Fn() + Send + Sync>),
        ("parker", Box::new(parker_scenario(Mutation::None))),
        ("shutdown", Box::new(shutdown_scenario(Mutation::None))),
        ("config-cell", Box::new(cell_scenario(Mutation::None))),
    ] {
        let report = c.check(name, f);
        println!("scenario '{name}': {} schedules explored (dfs_complete={})",
            report.schedules, report.dfs_complete);
        assert!(report.schedules > 1);
    }
}

#[test]
fn at_least_three_mutations_caught_and_replayable() {
    let c = checker();
    let mut caught = 0;

    if let Some(fail) = c.find_failure("deque-steal-skip-cas", deque_scenario(Mutation::DequeStealSkipCas)) {
        caught += 1;
        println!("caught deque mutation after {} schedules: {}", fail.schedules_explored, fail.message);
        let replayed = c
            .replay("deque-steal-skip-cas", &fail.schedule, deque_scenario(Mutation::DequeStealSkipCas))
            .expect("recorded schedule must reproduce the deque failure");
        assert_eq!(replayed.message, fail.message);
    }

    if let Some(fail) = c.find_failure("parker-skip-permit", parker_scenario(Mutation::ParkerNotifySkipPermit)) {
        caught += 1;
        println!("caught parker mutation after {} schedules: {}", fail.schedules_explored, fail.message);
        assert!(fail.message.contains("deadlock"), "lost wakeup must surface as deadlock");
        let replayed = c
            .replay("parker-skip-permit", &fail.schedule, parker_scenario(Mutation::ParkerNotifySkipPermit))
            .expect("recorded schedule must reproduce the parker deadlock");
        assert_eq!(replayed.message, fail.message);
    }

    if let Some(fail) = c.find_failure("shutdown-skip-drain", shutdown_scenario(Mutation::ShutdownSkipFinalDrain)) {
        caught += 1;
        println!("caught shutdown mutation after {} schedules: {}", fail.schedules_explored, fail.message);
        let replayed = c
            .replay("shutdown-skip-drain", &fail.schedule, shutdown_scenario(Mutation::ShutdownSkipFinalDrain))
            .expect("recorded schedule must reproduce the drain failure");
        assert_eq!(replayed.message, fail.message);
    }

    if let Some(fail) = c.find_failure("cell-publish-ptr-first", cell_scenario(Mutation::CellPublishPtrFirst)) {
        caught += 1;
        println!("caught cell mutation after {} schedules: {}", fail.schedules_explored, fail.message);
        let replayed = c
            .replay("cell-publish-ptr-first", &fail.schedule, cell_scenario(Mutation::CellPublishPtrFirst))
            .expect("recorded schedule must reproduce the torn snapshot");
        assert_eq!(replayed.message, fail.message);
    }

    assert!(caught >= 4, "only {caught}/4 seeded mutations caught — checker lost its teeth");
}
