//! Integration: the persistent-connection lifecycle — pipelining, idle
//! eviction, `connection: close` mid-stream, the per-connection request
//! cap, worker non-blocking under idle keep-alive sockets, and keep-alive
//! clients racing server shutdown.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::http::{
    ClientConn, HttpServer, Request, Response, ServerOptions, ServingPolicy, Status,
};
use pyjama::runtime::Runtime;

fn echo(req: &Request) -> Response {
    Response::ok(req.body.clone())
}

fn keep_alive_request(path: &str, body: Vec<u8>) -> Request {
    let mut req = Request::new("POST", path, body);
    req.headers.insert("connection", "keep-alive");
    req
}

fn pyjama_server(workers: usize, opts: ServerOptions) -> (HttpServer, Arc<Runtime>) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", workers);
    let server = HttpServer::start_with(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        opts,
        echo,
    )
    .unwrap();
    (server, rt)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(5), "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// Three requests written in a single `write_all`, three responses read
/// back — true pipelining on one socket, under both policies.
#[test]
fn pipelined_requests_are_served_in_order_on_one_socket() {
    let policies: Vec<(&str, HttpServer, Option<Arc<Runtime>>)> = {
        let jetty = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo).unwrap();
        let (pyjama_srv, rt) = pyjama_server(2, ServerOptions::default());
        vec![("jetty", jetty, None), ("pyjama", pyjama_srv, Some(rt))]
    };
    for (name, mut server, _rt) in policies {
        let mut wire = Vec::new();
        for i in 0..3u8 {
            let mut one = Vec::new();
            keep_alive_request(&format!("/r{i}"), vec![i; 8]).write_into(&mut one);
            wire.extend_from_slice(&one);
        }
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(&wire).unwrap(); // all three at once
        let mut reader = BufReader::new(stream);
        for i in 0..3u8 {
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok, "{name} response {i}");
            assert_eq!(resp.body, vec![i; 8], "{name} responses must stay in order");
        }
        wait_for(|| server.served() == 3, "served==3");
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 1, "{name}: one socket");
        assert!(
            stats.pipelined >= 1,
            "{name}: back-to-back requests must be detected as pipelined ({stats:?})"
        );
        server.shutdown();
    }
}

/// An idle keep-alive connection is evicted at the idle timeout and counted;
/// the client's single retry hides the eviction.
#[test]
fn idle_keep_alive_connection_is_evicted_and_counted() {
    for policy_is_pyjama in [false, true] {
        let opts = ServerOptions {
            idle_timeout: Duration::from_millis(100),
            ..ServerOptions::default()
        };
        let (mut server, _rt) = if policy_is_pyjama {
            let (s, rt) = pyjama_server(2, opts);
            (s, Some(rt))
        } else {
            (
                HttpServer::start_with(ServingPolicy::JettyPool { threads: 2 }, opts, echo)
                    .unwrap(),
                None,
            )
        };
        let mut conn = ClientConn::new(server.addr());
        let req = keep_alive_request("/echo", b"one".to_vec());
        assert_eq!(conn.send(&req).unwrap().body, b"one");
        wait_for(
            || server.conn_stats().timed_out_idle >= 1,
            "idle eviction counted",
        );
        // The evicted connection is stale; ClientConn reconnects under the
        // hood and the request still succeeds.
        assert_eq!(conn.send(&req).unwrap().body, b"one");
        wait_for(|| server.served() == 2, "served==2");
        assert!(server.conn_stats().accepted >= 2);
        server.shutdown();
    }
}

/// `connection: close` honored mid-stream: two keep-alive requests reuse the
/// socket, the third announces close and the server hangs up after it.
#[test]
fn connection_close_is_honored_mid_stream() {
    for policy_is_pyjama in [false, true] {
        let (mut server, _rt) = if policy_is_pyjama {
            let (s, rt) = pyjama_server(2, ServerOptions::default());
            (s, Some(rt))
        } else {
            (
                HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo).unwrap(),
                None,
            )
        };
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut wire = Vec::new();
        for i in 0..2u8 {
            keep_alive_request("/ka", vec![i; 4]).write_into(&mut wire);
            stream.write_all(&wire).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert!(!resp.announces_close(), "request {i} keeps the conn alive");
        }
        Request::new("POST", "/bye", b"done".to_vec()).write_into(&mut wire); // default: close
        stream.write_all(&wire).unwrap();
        let resp = Response::read_from(&mut reader).unwrap();
        assert!(resp.announces_close(), "server must echo the close intent");
        let mut rest = Vec::new();
        assert_eq!(
            reader.read_to_end(&mut rest).unwrap(),
            0,
            "server must close after the close-marked response"
        );
        wait_for(|| server.served() == 3, "served==3");
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.reused, 2, "{stats:?}");
        server.shutdown();
    }
}

/// The per-connection request cap closes the connection with the final
/// response; a persistent client transparently reconnects.
#[test]
fn max_requests_per_conn_cap_closes_and_reconnects() {
    let opts = ServerOptions {
        max_requests_per_conn: 2,
        ..ServerOptions::default()
    };
    let mut server =
        HttpServer::start_with(ServingPolicy::JettyPool { threads: 2 }, opts, echo).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut wire = Vec::new();
    keep_alive_request("/1", vec![1]).write_into(&mut wire);
    stream.write_all(&wire).unwrap();
    assert!(!Response::read_from(&mut reader).unwrap().announces_close());
    keep_alive_request("/2", vec![2]).write_into(&mut wire);
    stream.write_all(&wire).unwrap();
    let second = Response::read_from(&mut reader).unwrap();
    assert!(
        second.announces_close(),
        "response hitting the cap must announce close"
    );
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);

    // A ClientConn sending 4 requests against cap 2 needs ≥ 2 connections.
    let mut conn = ClientConn::new(server.addr());
    let req = keep_alive_request("/echo", b"x".to_vec());
    for _ in 0..4 {
        assert_eq!(conn.send(&req).unwrap().status.code(), 200);
    }
    wait_for(|| server.served() == 6, "served==6");
    assert!(server.conn_stats().accepted >= 3);
    server.shutdown();
}

/// Acceptance criterion: under the Pyjama policy no worker thread blocks on
/// an idle keep-alive socket — 2× pool-size idle connections are held open
/// while fresh requests keep being served, and the parked connections still
/// answer when they speak again.
#[test]
fn pyjama_idle_conns_do_not_block_workers() {
    let workers = 2;
    let opts = ServerOptions {
        idle_timeout: Duration::from_secs(30), // parked conns stay parked
        ..ServerOptions::default()
    };
    let (mut server, _rt) = pyjama_server(workers, opts);

    // Hold 2× pool-size connections open, each having served one request.
    let mut parked: Vec<ClientConn> = Vec::new();
    let req = keep_alive_request("/park", b"held".to_vec());
    for _ in 0..2 * workers {
        let mut c = ClientConn::new(server.addr());
        assert_eq!(c.send(&req).unwrap().body, b"held");
        parked.push(c);
    }
    wait_for(|| server.served() == 4, "parked conns served once each");

    // Every worker would now be blocked if idle connections pinned threads.
    // Fresh requests must still flow.
    for i in 0..8u8 {
        let resp = pyjama::http::http_post(server.addr(), "/fresh", vec![i; 4]).unwrap();
        assert_eq!(resp.body, vec![i; 4], "fresh request {i} while 4 conns idle");
    }
    wait_for(|| server.served() == 12, "fresh requests served");

    // The parked connections are still live sessions.
    for c in parked.iter_mut() {
        assert_eq!(c.send(&req).unwrap().body, b"held");
    }
    wait_for(|| server.served() == 16, "parked conns resumed");
    assert!(server.conn_stats().reused >= 4);
    server.shutdown();
}

/// Malformed framing answered with 400 immediately, not after a timeout.
#[test]
fn malformed_requests_get_400_fast() {
    let cases: [&[u8]; 3] = [
        b"POST /x HTTP/1.1\r\n\r\nbody-with-no-length",
        b"POST /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        b"POST /x HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n",
    ];
    let (mut server, _rt) = pyjama_server(2, ServerOptions::default());
    for raw in cases {
        let t0 = Instant::now();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(raw).unwrap();
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "400 must beat the I/O timeout (took {:?})",
            t0.elapsed()
        );
    }
    // The error counter is bumped around the 400 write; the client can read
    // the response a moment before the increment lands.
    wait_for(|| server.errors() >= 3, "errors>=3");
    server.shutdown();
}

/// Stress: keep-alive clients race server shutdown. No stranded client (all
/// client threads finish), no double-counted request (`served` is monotone
/// and ends ≥ the number of client-observed completions).
#[test]
fn keep_alive_clients_racing_shutdown_are_never_stranded() {
    for round in 0..3 {
        let (mut server, _rt) = pyjama_server(2, ServerOptions::default());
        let addr = server.addr();
        let stop_clients = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(std::sync::atomic::AtomicU64::new(0));

        // A sampler asserting `served` never decreases (the old
        // increment-then-undo scheme was observably non-monotone).
        let served_monotone = {
            let stop = Arc::clone(&stop_clients);
            let shared = server.served_probe();
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut ok = true;
                while !stop.load(Ordering::SeqCst) {
                    let now = shared();
                    ok &= now >= last;
                    last = now;
                    std::thread::sleep(Duration::from_micros(200));
                }
                ok
            })
        };

        let clients: Vec<_> = (0..4)
            .map(|u| {
                let stop = Arc::clone(&stop_clients);
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    let mut conn =
                        ClientConn::new(addr).with_read_timeout(Duration::from_secs(2));
                    let req = keep_alive_request("/stress", vec![u as u8; 16]);
                    while !stop.load(Ordering::SeqCst) {
                        match conn.send(&req) {
                            Ok(resp) if resp.status.code() == 200 => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            // Shutdown races surface as closed connections —
                            // fine, just stop sending.
                            _ => break,
                        }
                    }
                })
            })
            .collect();

        // Let traffic flow briefly, then yank the server mid-stream.
        std::thread::sleep(Duration::from_millis(30 + 20 * round));
        server.shutdown();
        stop_clients.store(true, Ordering::SeqCst);
        for c in clients {
            c.join().expect("client threads must all finish — none stranded");
        }
        assert!(
            served_monotone.join().unwrap(),
            "served counter must be monotone"
        );
        // Every client-observed completion was written (and counted) by the
        // server; the server may have served a response whose read raced
        // shutdown, so served >= completed.
        assert!(
            server.served() >= completed.load(Ordering::Relaxed),
            "served {} < client completions {} — double count or lost write",
            server.served(),
            completed.load(Ordering::Relaxed)
        );
    }
}
