//! Integration: the live control plane end to end — atomic reconfiguration
//! of a serving stack under load, admission-control shed/recover, and
//! whole-snapshot rejection leaving the old generation serving.

use std::sync::Arc;
use std::time::Duration;

use pyjama::control::{ConfigError, ControlPlane};
use pyjama::http::{
    http_get, http_post, HttpServer, LoadGenerator, Request, Response, ServerOptions,
    ServingPolicy, Status,
};
use pyjama::runtime::{Runtime, WorkerTarget};

/// A controlled Pyjama-policy server over a worker target of `m` threads,
/// with the plane driving both the pool size and the admission gate.
fn start_controlled(
    m: usize,
    handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
) -> (HttpServer, ControlPlane, Arc<WorkerTarget>) {
    let rt = Arc::new(Runtime::new());
    let target = rt.virtual_target_create_worker("worker", m);
    let plane = ControlPlane::new();
    plane.attach_worker_target(&target);
    let server = HttpServer::start_controlled(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: rt,
            target: "worker".into(),
        },
        ServerOptions::default(),
        &plane,
        handler,
    )
    .unwrap();
    (server, plane, target)
}

/// Shrink 8 → 2 → 8 while a closed-loop wave is in flight: zero request
/// failures, every resize applied as its own generation, and the admission
/// conservation law holds throughout.
#[test]
fn live_resize_mid_wave_loses_no_requests() {
    let (mut server, plane, target) = start_controlled(8, |req| {
        // A touch of latency so the wave is still in flight when the
        // resizes land mid-stream.
        std::thread::sleep(Duration::from_micros(300));
        Response::ok(req.body.clone())
    });
    let mut cfg = plane.config();
    cfg.workers = 8;
    plane.apply(cfg).expect("align config with the 8-thread pool");

    let addr = server.addr();
    let wave =
        std::thread::spawn(move || LoadGenerator::new(8, 40, "/echo", vec![7u8; 64]).run(addr));
    // Let the wave ramp, then shrink into it and grow back out of it.
    std::thread::sleep(Duration::from_millis(30));
    cfg.workers = 2;
    plane.apply(cfg).expect("live shrink");
    std::thread::sleep(Duration::from_millis(30));
    cfg.workers = 8;
    plane.apply(cfg).expect("live grow");

    let report = wave.join().unwrap();
    assert_eq!(report.failed, 0, "a live resize must not fail requests");
    assert_eq!(report.shed, 0, "admission control is disabled here");
    assert_eq!(report.completed, 8 * 40);

    let stats = plane.stats();
    assert_eq!(stats.applied, 3, "align + shrink + grow");
    assert_eq!(stats.rejected, 0);
    assert_eq!(plane.generation(), 3);
    assert_eq!(target.num_threads(), 8, "pool follows the final generation");

    let adm = server.admission_stats();
    assert!(
        adm.balanced(),
        "offered {} != admitted {} + shed {}",
        adm.offered,
        adm.admitted,
        adm.shed
    );
    assert_eq!(adm.shed, 0);
    server.shutdown();
}

/// Shed/recover cycle. Phase 1: a single slow worker with a tight admission
/// threshold under a 6-user closed-loop wave — the backlogged dequeues must
/// shed with the configured `Retry-After`, and shed + completed must
/// account for every request. Phase 2: raise the threshold away (0 =
/// disabled) and the same load completes with zero sheds.
#[test]
fn admission_sheds_under_overload_and_recovers_on_reconfig() {
    let (mut server, plane, _target) = start_controlled(1, |_req| {
        std::thread::sleep(Duration::from_millis(2));
        Response::ok(b"ok".to_vec())
    });
    let mut cfg = plane.config();
    cfg.workers = 1;
    cfg.admission_threshold = 1;
    cfg.retry_after_secs = 7;
    plane.apply(cfg).expect("enable admission control");

    let users = 6u64;
    let per_user = 30u64;
    let overload = LoadGenerator::new(users as usize, per_user as usize, "/work", vec![1u8; 8])
        .with_shed_backoff(Duration::from_millis(2));
    let addr = server.addr();
    let wave = {
        let overload = overload.clone();
        std::thread::spawn(move || overload.run(addr))
    };
    // While the wave keeps the queue deep, a bystander request should get
    // shed eventually — and the 429 must advertise the configured value.
    let mut saw_429 = None;
    for _ in 0..200 {
        let resp = http_get(addr, "/probe").unwrap();
        if resp.status.code() == 429 {
            saw_429 = Some(resp);
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = wave.join().unwrap();
    assert_eq!(report.failed, 0, "sheds are not failures");
    assert!(report.shed > 0, "overload past the threshold must shed");
    assert_eq!(
        report.completed + report.shed,
        users * per_user,
        "every request is either admitted or shed"
    );
    let shed_resp = saw_429.expect("a probe during sustained overload must observe a 429");
    assert_eq!(
        shed_resp.retry_after(),
        Some(7),
        "shed response must advertise the configured Retry-After"
    );

    // Recover: disable admission control; the identical wave now completes
    // in full with no sheds.
    cfg.admission_threshold = 0;
    plane.apply(cfg).expect("disable admission control");
    let recovered = overload.run(addr);
    assert_eq!(recovered.shed, 0, "threshold 0 disables shedding");
    assert_eq!(recovered.failed, 0);
    assert_eq!(recovered.completed, users * per_user);

    let adm = server.admission_stats();
    assert!(adm.balanced());
    assert!(adm.shed >= report.shed, "server-side sheds cover the client's count");
    server.shutdown();
}

/// Whole-snapshot rejection: an invalid config must change nothing — same
/// generation, same effective limits, old config still serving.
#[test]
fn invalid_config_is_rejected_and_old_generation_serves() {
    let (mut server, plane, _target) = start_controlled(2, |req| Response::ok(req.body.clone()));
    let mut cfg = plane.config();
    cfg.workers = 2;
    cfg.max_body_bytes = 2048;
    plane.apply(cfg).expect("baseline generation");
    let gen_before = plane.generation();

    // Field validation failure: zero workers.
    cfg.workers = 0;
    assert_eq!(plane.apply(cfg), Err(ConfigError::ZeroWorkers));

    // Precheck failure: beyond the attached pool's fixed slot capacity.
    cfg.workers = 4096;
    match plane.apply(cfg) {
        Err(ConfigError::ExceedsPoolCapacity { requested, .. }) => assert_eq!(requested, 4096),
        other => panic!("expected ExceedsPoolCapacity, got {other:?}"),
    }

    let stats = plane.stats();
    assert_eq!(plane.generation(), gen_before, "rejected configs must not publish");
    assert_eq!(stats.rejected, 2);
    assert_eq!(plane.config().workers, 2, "old snapshot still current");

    // The old generation's limits are still live on the wire: a body within
    // the 2 KiB cap serves, one over it is rejected, and a fresh small
    // request still gets a 200 afterwards.
    let ok = http_post(server.addr(), "/echo", vec![1u8; 1024]).unwrap();
    assert_eq!(ok.status, Status::Ok);
    let too_big = http_post(server.addr(), "/echo", vec![1u8; 4096]).unwrap();
    assert_eq!(too_big.status, Status::BadRequest, "over-cap body is refused");
    let again = http_post(server.addr(), "/echo", vec![2u8; 64]).unwrap();
    assert_eq!(again.status, Status::Ok);
    assert_eq!(again.body, vec![2u8; 64]);
    server.shutdown();
}
