//! Property-based tests over the core data structures and invariants.
//!
//! Compiled only with `--features proptest` (see the `[[test]]` block in the
//! root manifest): proptest is an optional dependency so the tier-1 suite
//! builds in environments without a registry route.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pyjama::kernels::crypt::{self, IdeaKey};
use pyjama::metrics::{Histogram, OnlineStats};
use pyjama::omp::{parallel_reduce, Schedule};
use pyjama::runtime::directive::TargetDirective;
use pyjama::runtime::Mode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IDEA round-trips for any key and any block-aligned payload.
    #[test]
    fn idea_roundtrip(
        key in prop::array::uniform8(any::<u16>()),
        blocks in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let key = IdeaKey::new(key);
        let mut data: Vec<u8> = blocks;
        data.truncate(data.len() / 8 * 8);
        let original = data.clone();
        crypt::encrypt_seq(&key, &mut data);
        crypt::decrypt_seq(&key, &mut data);
        prop_assert_eq!(data, original);
    }

    /// Parallel IDEA equals sequential IDEA for any thread count.
    #[test]
    fn idea_parallel_matches_sequential(
        len_blocks in 1usize..64,
        threads in 1usize..6,
    ) {
        let key = IdeaKey::benchmark_key();
        let mut a = crypt::make_plaintext(len_blocks * 8);
        let mut b = a.clone();
        crypt::encrypt_seq(&key, &mut a);
        crypt::encrypt_par(&key, &mut b, threads);
        prop_assert_eq!(a, b);
    }

    /// Histogram mean is exact; quantiles are monotone and bounded by
    /// min/max.
    #[test]
    fn histogram_invariants(samples in prop::collection::vec(0u64..10_000_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact_mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());

        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            prop_assert!(v >= h.min() && v <= h.max());
            last = v;
        }
    }

    /// Histogram merge is equivalent to recording the concatenation.
    #[test]
    fn histogram_merge_equivalence(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        let mut merged = ha.clone();
        merged.merge(&hb);

        let mut whole = Histogram::new();
        for &v in a.iter().chain(&b) { whole.record(v); }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        prop_assert_eq!(merged.quantile(0.99), whole.quantile(0.99));
    }

    /// OnlineStats merge is order-independent and matches single-pass.
    #[test]
    fn online_stats_merge(xs in prop::collection::vec(-1e6f64..1e6, 1..100), split in 0usize..100) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut left = OnlineStats::new();
        for &x in &xs[..split] { left.push(x); }
        let mut right = OnlineStats::new();
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((left.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().abs().max(1.0));
    }

    /// Every schedule covers every iteration exactly once, and a parallel
    /// sum-reduction equals the sequential fold.
    #[test]
    fn omp_reduction_correct_for_any_schedule(
        n in 0usize..2_000,
        threads in 1usize..6,
        sched_pick in 0u8..4,
        chunk in 1usize..32,
    ) {
        let schedule = match sched_pick {
            0 => Schedule::Static { chunk: None },
            1 => Schedule::Static { chunk: Some(chunk) },
            2 => Schedule::Dynamic { chunk },
            _ => Schedule::Guided { min_chunk: chunk },
        };
        let total = parallel_reduce(
            threads,
            0..n,
            schedule,
            0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        prop_assert_eq!(total, (0..n as u64).sum::<u64>());
    }

    /// Directive text round-trips: parse → render → parse is a fixpoint.
    #[test]
    fn directive_roundtrip(
        target_pick in 0u8..3,
        device in 0u32..8,
        mode_pick in 0u8..4,
        tag in "[a-z]{1,8}",
        wait_tag in "[a-z]{1,8}",
        with_wait in any::<bool>(),
    ) {
        let target = match target_pick {
            0 => String::new(),
            1 => format!(" device({device})"),
            _ => format!(" virtual({tag})"),
        };
        let mode = match mode_pick {
            0 => String::new(),
            1 => " nowait".to_string(),
            2 => format!(" name_as({tag})"),
            _ => " await".to_string(),
        };
        let wait = if with_wait { format!(" wait({wait_tag})") } else { String::new() };
        let text = format!("target{target}{mode}{wait}");
        let d1 = TargetDirective::parse(&text).unwrap();
        let d2 = TargetDirective::parse(&d1.to_directive_text()).unwrap();
        prop_assert_eq!(d1, d2);
    }

    /// Mode classification is a partition: every mode either blocks the
    /// continuation or is fire-and-forget, never both.
    #[test]
    fn mode_classification_partition(pick in 0u8..4, tag in "[a-z]{1,6}") {
        let mode = match pick {
            0 => Mode::Wait,
            1 => Mode::NoWait,
            2 => Mode::NameAs(tag),
            _ => Mode::Await,
        };
        prop_assert!(mode.blocks_continuation() != mode.is_fire_and_forget());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workshared loops write each slot exactly once (no lost or
    /// duplicated iterations under any schedule/thread combination).
    #[test]
    fn worksharing_covers_exactly_once(
        n in 1usize..500,
        threads in 1usize..5,
        chunk in 1usize..16,
        dynamic in any::<bool>(),
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let schedule = if dynamic {
            Schedule::Dynamic { chunk }
        } else {
            Schedule::Static { chunk: Some(chunk) }
        };
        pyjama::omp::parallel_for(threads, 0..n, schedule, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
