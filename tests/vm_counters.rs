//! PR-8 acceptance: the VM conservation law. Every `target` directive the
//! bytecode VM dispatches goes through exactly one `Runtime::try_target`
//! call, so over a quiesced run
//!
//! > `VmStats::target_dispatches == RunOutput::target_posts`
//!
//! where `target_posts` is the runtime's own `Σ (posted + inline)`
//! accounting. A violation means a directive was lowered without being
//! dispatched, or dispatched twice — bugs output-equality tests can miss.
//!
//! Single `#[test]`: the VM counters are process-global, and any other PJ
//! program running concurrently in this binary would pollute the deltas
//! (which is also why this law is only *lower-bounded* in the compiler's
//! own unit suite).

use std::sync::Arc;

use pyjama::compiler::{parse, vm_stats, Engine, ExecConfig, Interpreter, RunOutput};

fn run_vm(src: &str, ignore: bool) -> RunOutput {
    let program = parse(src).expect("parse");
    Interpreter::new(Arc::new(program))
        .run(&ExecConfig {
            engine: Engine::Vm,
            ignore_directives: ignore,
            ..Default::default()
        })
        .expect("run")
}

#[test]
fn target_dispatches_balance_runtime_posts() {
    // Every mode in one program: wait, nowait, name_as + wait(tag), a
    // disabled `if(false)` (no dispatch, no post), and a loop of posts.
    let src = r#"fn main() {
        let log = arr();
        //#omp target virtual(worker)
        { push(log, "wait"); }
        //#omp target virtual(worker) name_as(bg)
        { push(log, "named"); }
        //#omp wait(bg)
        //#omp target virtual(worker) if(false)
        { push(log, "inline-disabled"); }
        for i in 0..5 {
            //#omp target virtual(worker) nowait
            { push(log, "fanned"); }
        }
        //#omp target virtual(edt)
        { push(log, "edt"); }
        print(len(log) >= 3);
    }"#;

    let before = vm_stats();
    let out = run_vm(src, false);
    let delta = vm_stats().since(&before);

    // 1 wait + 1 name_as + 5 nowait + 1 edt = 8 dispatches; the disabled
    // `if(false)` block ran inline in the VM frame and must not count.
    assert_eq!(delta.target_dispatches, 8, "{delta:?}");
    assert_eq!(
        out.target_posts, 8,
        "runtime saw a different number of regions than the VM dispatched"
    );
    assert!(
        delta.dispatches_balanced(out.target_posts),
        "conservation law violated: vm={} runtime={}",
        delta.target_dispatches,
        out.target_posts
    );
    assert!(delta.ops_executed > 0);
    // main + 8 dispatched closures, at minimum.
    assert!(delta.frames_pushed >= 9, "{delta:?}");
    assert_eq!(delta.team_regions, 0, "no parallel regions in this program");

    // Team regions tick for `parallel` and non-empty `parallel for`, and
    // target accounting stays untouched by them.
    let before = vm_stats();
    let out = run_vm(
        r#"fn main() {
            let acc = zeros(4);
            //#omp parallel num_threads(2)
            { acc[omp_get_thread_num()] = 1; }
            //#omp parallel for num_threads(2)
            for i in 0..4 { acc[i] = acc[i] + 1; }
            //#omp parallel for
            for i in 3..3 { acc[0] = 99; }
            print(acc[0], acc[1], acc[2], acc[3]);
        }"#,
        false,
    );
    let delta = vm_stats().since(&before);
    assert_eq!(delta.team_regions, 2, "empty parallel for must not fork");
    assert_eq!(delta.target_dispatches, 0);
    assert!(delta.dispatches_balanced(out.target_posts));
    assert_eq!(out.target_posts, 0);

    // Ignore mode: directives are comments; nothing may reach the runtime.
    let before = vm_stats();
    let out = run_vm(src, true);
    let delta = vm_stats().since(&before);
    assert_eq!(delta.target_dispatches, 0, "ignored directives dispatched");
    assert_eq!(delta.team_regions, 0);
    assert_eq!(out.target_posts, 0);
    assert!(delta.dispatches_balanced(out.target_posts));
    assert!(delta.ops_executed > 0, "the program itself still ran");
}
