//! Integration: the PJ compiler front end driving the real runtime and
//! fork-join substrates, plus the §IV-A restructuring on realistic input.

use std::sync::Arc;

use pyjama::compiler::{parse, run_source, transform, ExecConfig, Interpreter};

#[test]
fn figure6_program_compiles_and_runs() {
    let out = run_source(
        r#"
fn get_hash_code(info) { return hash(info); }

fn download_and_compute(hs, log) {
    sleep_ms(5);
    push(log, "downloaded:" + hs);
    //#omp target virtual(edt)
    { push(log, "display-img"); }
}

fn button_on_click(log) {
    push(log, "start-msg");
    //#omp target virtual(worker) name_as(handler)
    {
        let hs = get_hash_code("user-input");
        download_and_compute(hs, log);
        //#omp target virtual(edt)
        { push(log, "finished-msg"); }
    }
}

fn main() {
    let log = arr();
    button_on_click(log);
    //#omp wait(handler)
    for i in 0..len(log) { print(log[i]); }
}
"#,
    )
    .expect("program runs");
    assert_eq!(out.output.len(), 4);
    assert_eq!(out.output[0], "start-msg");
    assert!(out.output[1].starts_with("downloaded:"));
    assert_eq!(out.output[2], "display-img");
    assert_eq!(out.output[3], "finished-msg");
}

#[test]
fn mixed_parallel_and_target_directives() {
    let out = run_source(
        r#"
fn main() {
    let partials = zeros(4);
    //#omp parallel num_threads(4)
    {
        let tid = omp_get_thread_num();
        partials[tid] = (tid + 1) * 10;
    }
    let total = 0;
    //#omp target virtual(worker)
    {
        for i in 0..4 { total += partials[i]; }
    }
    print(total);
}
"#,
    )
    .expect("program runs");
    assert_eq!(out.output, vec!["100"]);
}

#[test]
fn parallel_for_reduction_pattern() {
    let out = run_source(
        r#"
fn main() {
    let squares = zeros(100);
    //#omp parallel for num_threads(4) schedule(guided, 2)
    for i in 0..100 { squares[i] = i * i; }
    let sum = 0;
    for i in 0..100 { sum += squares[i]; }
    print(sum);
}
"#,
    )
    .expect("program runs");
    assert_eq!(out.output, vec!["328350"]); // sum of squares 0..99
}

#[test]
fn sequential_equivalence_on_a_nontrivial_program() {
    let src = r#"
fn work(acc, n) {
    //#omp critical(acc)
    { push(acc, n); }
}

fn main() {
    let acc = arr();
    //#omp parallel for num_threads(3)
    for i in 0..25 { work(acc, i); }
    //#omp target virtual(worker) name_as(t)
    { push(acc, 100); }
    //#omp wait(t)
    print(len(acc));
}
"#;
    let program = Arc::new(parse(src).unwrap());
    let interp = Interpreter::new(program);
    let with = interp.run(&ExecConfig::default()).unwrap();
    let without = interp
        .run(&ExecConfig {
            ignore_directives: true,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(with.output, without.output);
    assert_eq!(with.output, vec!["26"]);
}

#[test]
fn transformation_index_matches_runtime_behaviour() {
    // The §IV-A transform extracts the same set of regions the interpreter
    // dispatches: count dispatched target blocks via tag registry.
    let src = r#"
fn main() {
    //#omp target virtual(worker) name_as(a)
    { let x = 1; }
    //#omp target virtual(worker) name_as(a)
    { let y = 2; }
    //#omp wait(a)
    print("done");
}
"#;
    let program = parse(src).unwrap();
    let t = transform(&program);
    assert_eq!(t.regions.len(), 2);
    assert!(t.regions.iter().all(|r| r.target == "worker"));

    let out = Interpreter::new(Arc::new(program))
        .run(&ExecConfig::default())
        .unwrap();
    assert_eq!(out.output, vec!["done"]);
}

#[test]
fn java_like_rendering_of_realistic_handler() {
    let src = r#"
fn main() {
    setText("Start Processing Task!");
    //#omp target virtual(worker) await
    {
        compute_half1();
        //#omp target virtual(edt) nowait
        { setText("Task half finished"); }
        compute_half2();
    }
    setText("Task finished");
}
"#;
    let t = transform(&parse(src).unwrap());
    let rendered = t.to_java_like_source();
    // The §IV-A landmarks, in order:
    let landmarks = [
        "class TargetRegion_0() implements Runnable",
        "compute_half1();",
        "TargetRegion _omp_tr_1 = new TargetRegion_1();",
        "PjRuntime.invokeTargetBlock(\"edt\", _omp_tr_1, Async.nowait);",
        "compute_half2();",
        "TargetRegion _omp_tr_0 = new TargetRegion_0();",
        "PjRuntime.invokeTargetBlock(\"worker\", _omp_tr_0, Async.await);",
    ];
    let mut pos = 0;
    for lm in landmarks {
        let found = rendered[pos..]
            .find(lm)
            .unwrap_or_else(|| panic!("missing `{lm}` after byte {pos} in:\n{rendered}"));
        pos += found;
    }
}

#[test]
fn compile_errors_are_reported_not_panicked() {
    for bad in [
        "fn main() { let = 1; }",
        "fn main() { //#omp target virtual() \n { } }",
        "fn main() { x = 1; }", // assignment to undeclared is a runtime error
    ] {
        if let Ok(p) = parse(bad) {
            // Parsed fine → must fail at runtime, not panic.
            let r = Interpreter::new(Arc::new(p)).run(&ExecConfig::default());
            assert!(r.is_err(), "`{bad}` should fail");
        } // else: compile error is the expected path
    }
}
