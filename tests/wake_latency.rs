//! Regression test for the wake-driven `await` barrier: an event posted to
//! the EDT while it is blocked in `Mode::Await` must be dispatched by a real
//! wakeup, not after a polling quantum (the old implementation parked in
//! 200µs slices, adding up to a full quantum of latency per event).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::events::Edt;
use pyjama::runtime::{Mode, Runtime};

#[test]
fn event_posted_during_await_is_dispatched_by_wakeup() {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 1);
    let edt = Edt::spawn("edt");
    let h = edt.handle();

    let park_before = pyjama::runtime::park_stats();

    // Hold the EDT inside an await barrier: the awaited worker block only
    // returns once the gate is released, so every probe event below can
    // only be dispatched by the barrier's re-entrant helping.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let rt2 = Arc::clone(&rt);
    h.post(move || {
        rt2.target("worker", Mode::Await, move || {
            entered_tx.send(()).unwrap();
            let _ = gate_rx.recv();
        });
    });
    entered_rx.recv().unwrap();

    // Take the minimum over a batch of probes so one unlucky scheduling
    // hiccup cannot fail the test; what must be impossible is *every* probe
    // waiting out a poll quantum.
    let mut best = Duration::MAX;
    for _ in 0..20 {
        // Give the EDT a moment to finish the previous dispatch and park.
        std::thread::sleep(Duration::from_millis(2));
        let (ack_tx, ack_rx) = mpsc::channel::<Instant>();
        let t0 = Instant::now();
        h.post(move || {
            let _ = ack_tx.send(Instant::now());
        });
        let dispatched_at = ack_rx.recv().unwrap();
        best = best.min(dispatched_at.duration_since(t0));
    }
    gate_tx.send(()).unwrap();

    let bound = if cfg!(debug_assertions) {
        Duration::from_millis(40)
    } else {
        Duration::from_micros(100)
    };
    assert!(
        best < bound,
        "best post→dispatch latency {best:?} exceeds {bound:?} — \
         the await barrier looks like it is polling again"
    );

    let park_after = pyjama::runtime::park_stats();
    assert!(
        park_after.parks > park_before.parks,
        "the await barrier must actually park between probes"
    );
    assert!(
        park_after.wakes > park_before.wakes,
        "posted events must wake the parked EDT"
    );
    assert!(
        park_after.notifies > park_before.notifies,
        "wake sources must have fired"
    );
}
