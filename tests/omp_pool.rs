//! Integration tests for the persistent fork-join pool behind
//! `omp::parallel`: thread reuse, the hot-team fast path, panic routing
//! through pooled members, nesting, concurrency, and the `TeamStats`
//! conservation law.
//!
//! The team counters are process-global, so every test here serialises on
//! one mutex; counter assertions are always on snapshot *deltas*.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pyjama::omp::{parallel, team_stats, Schedule};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn repeated_regions_reuse_pooled_threads() {
    let _g = serial();
    const REGIONS: u64 = 24;
    const TEAM: usize = 4;
    let before = team_stats();
    let total = AtomicUsize::new(0);
    for _ in 0..REGIONS {
        parallel(TEAM, |ctx| {
            total.fetch_add(ctx.thread_num() + 1, Ordering::Relaxed);
        });
    }
    let d = team_stats().since(&before);
    assert_eq!(total.load(Ordering::Relaxed) as u64, REGIONS * 10);
    assert_eq!(d.regions_forked, REGIONS);
    // At most the first region may lease (or spawn) workers; every later
    // same-size region must hit the caller's hot-team cache.
    assert!(
        d.regions_hot >= REGIONS - 1,
        "expected >= {} hot forks, got {}",
        REGIONS - 1,
        d.regions_hot
    );
    assert!(
        d.threads_spawned <= (TEAM - 1) as u64,
        "a region needs at most {} new threads, spawned {}",
        TEAM - 1,
        d.threads_spawned
    );
    assert!(
        d.threads_reused >= (REGIONS - 1) * (TEAM - 1) as u64,
        "hot regions must reuse threads (reused {})",
        d.threads_reused
    );
}

#[test]
fn team_stats_conserve_activations() {
    let _g = serial();
    let before = team_stats();
    // A mix of sizes, including the no-worker size-1 case.
    for nt in [1usize, 3, 5, 2, 5, 1, 4] {
        let hits = AtomicUsize::new(0);
        parallel(nt, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), nt);
    }
    let d = team_stats().since(&before);
    // Every pooled-member activation either consumed a fresh spawn or
    // counted as a reuse — no third bucket, nothing double-counted.
    assert!(
        d.activations_conserved(),
        "spawned {} + reused {} != activations {}",
        d.threads_spawned,
        d.threads_reused,
        d.member_activations
    );
    // Size-1 regions never touch the pool: 3+5+2+5+4 regions contribute
    // (nt - 1) members each.
    assert_eq!(d.member_activations, 2 + 4 + 1 + 4 + 3);
}

#[test]
fn member_panic_resurfaces_and_pool_survives() {
    let _g = serial();
    let r = std::panic::catch_unwind(|| {
        parallel(4, |ctx| {
            if ctx.thread_num() == 2 {
                panic!("boom from a pooled member");
            }
        });
    });
    let payload = r.expect_err("member panic must resurface on the caller");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert!(msg.contains("boom"), "panic payload preserved, got {msg:?}");
    // The pool (and this caller's hot team) must still be usable.
    let n = AtomicUsize::new(0);
    parallel(4, |_| {
        n.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(n.load(Ordering::Relaxed), 4);
}

#[test]
fn team_size_changes_between_regions() {
    let _g = serial();
    let before = team_stats();
    for nt in [4usize, 2, 8, 4, 4] {
        let sum = AtomicUsize::new(0);
        parallel(nt, |ctx| {
            ctx.for_range(0..100, Schedule::Static { chunk: None }, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950, "size {nt} region");
    }
    let d = team_stats().since(&before);
    assert_eq!(d.regions_forked, 5);
    // Only the final 4 -> 4 transition can be hot; every size change must
    // re-lease. (>= rather than == : an earlier test may have warmed a
    // size-4 cache on this thread, making the first region hot too.)
    assert!(d.regions_hot >= 1, "same-size refork must be hot");
    assert!(d.activations_conserved());
}

#[test]
fn nested_parallel_from_pool_worker() {
    let _g = serial();
    // The inner region's encountering thread is itself a pooled worker; it
    // must lease its own (disjoint) members rather than alias the outer
    // team, and both joins must complete.
    let inner_hits = AtomicUsize::new(0);
    let outer_hits = AtomicUsize::new(0);
    parallel(3, |ctx| {
        outer_hits.fetch_add(1, Ordering::Relaxed);
        if ctx.thread_num() == 1 {
            parallel(2, |inner| {
                inner_hits.fetch_add(10 + inner.thread_num(), Ordering::Relaxed);
            });
        }
        ctx.barrier();
    });
    assert_eq!(outer_hits.load(Ordering::Relaxed), 3);
    assert_eq!(inner_hits.load(Ordering::Relaxed), 21);
}

#[test]
fn concurrent_regions_from_two_caller_threads() {
    let _g = serial();
    const PER_CALLER: usize = 40;
    let before = team_stats();
    let totals: Vec<usize> = std::thread::scope(|s| {
        let hs: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    let mine = AtomicUsize::new(0);
                    for _ in 0..PER_CALLER {
                        parallel(3, |ctx| {
                            mine.fetch_add(ctx.thread_num() + 1, Ordering::Relaxed);
                        });
                    }
                    mine.load(Ordering::Relaxed)
                })
            })
            .collect();
        hs.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(totals, vec![PER_CALLER * 6, PER_CALLER * 6]);
    let d = team_stats().since(&before);
    assert_eq!(d.regions_forked, 2 * PER_CALLER as u64);
    // Each caller leases once then stays hot; concurrent leases never share
    // workers, so at most 2 * 2 threads are spawned across both callers.
    assert!(
        d.threads_spawned <= 4,
        "two concurrent callers need at most 4 new threads, spawned {}",
        d.threads_spawned
    );
    assert!(d.activations_conserved());
}

#[test]
fn barrier_outcomes_are_counted() {
    let _g = serial();
    let before = team_stats();
    parallel(4, |ctx| {
        ctx.barrier();
        ctx.barrier();
    });
    let d = team_stats().since(&before);
    // 3 non-leader waiters per barrier generation (2 explicit + join), each
    // resolving as either a spin success or a park.
    assert!(
        d.barrier_spins + d.barrier_parks >= 9,
        "expected >= 9 recorded waits, got spins {} + parks {}",
        d.barrier_spins,
        d.barrier_parks
    );
}
