//! Integration: the §V-B encryption service across both serving policies,
//! with real IDEA encryption over loopback TCP.

use std::sync::Arc;

use pyjama::http::{http_post, HttpServer, LoadGenerator, Request, Response, ServingPolicy, Status};
use pyjama::kernels::crypt::{decrypt_seq, encrypt_seq, IdeaKey};
use pyjama::runtime::Runtime;

fn encryption_handler(req: &Request) -> Response {
    let key = IdeaKey::benchmark_key();
    if req.body.is_empty() || !req.body.len().is_multiple_of(8) {
        return Response::error(Status::BadRequest, "body must be a multiple of 8 bytes");
    }
    let mut data = req.body.clone();
    encrypt_seq(&key, &mut data);
    Response::ok(data)
}

fn start_pyjama_server() -> (HttpServer, Arc<Runtime>) {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 3);
    let server = HttpServer::start(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        encryption_handler,
    )
    .unwrap();
    (server, rt)
}

#[test]
fn ciphertext_decrypts_back_to_the_request_body() {
    let (mut server, _rt) = start_pyjama_server();
    let plaintext = b"exactly sixteen!".to_vec();
    let resp = http_post(server.addr(), "/encrypt", plaintext.clone()).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_ne!(resp.body, plaintext, "ciphertext must differ");
    let key = IdeaKey::benchmark_key();
    let mut round = resp.body.clone();
    decrypt_seq(&key, &mut round);
    assert_eq!(round, plaintext);
    server.shutdown();
}

#[test]
fn both_policies_compute_identical_ciphertext() {
    let mut jetty =
        HttpServer::start(ServingPolicy::JettyPool { threads: 3 }, encryption_handler).unwrap();
    let (mut pyjama_srv, _rt) = start_pyjama_server();

    let body = vec![0x42u8; 64];
    let a = http_post(jetty.addr(), "/encrypt", body.clone()).unwrap();
    let b = http_post(pyjama_srv.addr(), "/encrypt", body).unwrap();
    assert_eq!(a.body, b.body, "serving policy must not affect results");

    jetty.shutdown();
    pyjama_srv.shutdown();
}

#[test]
fn bad_request_rejected_with_400() {
    let (mut server, _rt) = start_pyjama_server();
    let resp = http_post(server.addr(), "/encrypt", vec![1, 2, 3]).unwrap();
    assert_eq!(resp.status, Status::BadRequest);
    server.shutdown();
}

#[test]
fn virtual_user_load_completes_on_both_policies() {
    let body = vec![7u8; 128];
    let gen = LoadGenerator::new(10, 4, "/encrypt", body);

    let mut jetty =
        HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, encryption_handler).unwrap();
    let rj = gen.run(jetty.addr());
    assert_eq!(rj.completed, 40);
    assert_eq!(rj.failed, 0);
    jetty.shutdown();

    let (mut pyjama_srv, _rt) = start_pyjama_server();
    let rp = gen.run(pyjama_srv.addr());
    assert_eq!(rp.completed, 40);
    assert_eq!(rp.failed, 0);
    pyjama_srv.shutdown();
}

#[test]
fn server_counts_match_load_report() {
    let (mut server, _rt) = start_pyjama_server();
    let gen = LoadGenerator::new(4, 5, "/encrypt", vec![0u8; 16]);
    let report = gen.run(server.addr());
    assert_eq!(report.completed, 20);
    // `served` is incremented after the response write succeeds, so the
    // client can observe its response a moment before the counter: spin.
    let t0 = std::time::Instant::now();
    while server.served() < 20 && t0.elapsed() < std::time::Duration::from_secs(5) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(server.served(), 20);
    server.shutdown();
}
