//! Soak tests: the substrates under sustained, mixed load. Each test is
//! sized to finish in a couple of seconds while still exercising the
//! contention paths (queue churn, tag-registry compaction, re-entrant
//! pumping under fire, team reuse).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::events::{Edt, Priority};
use pyjama::omp::{parallel, parallel_reduce, Schedule};
use pyjama::runtime::{Mode, Runtime};

#[test]
fn event_loop_sustains_mixed_priorities_and_timers() {
    let edt = Edt::spawn("stress-edt");
    let dispatched = Arc::new(AtomicU64::new(0));
    const IMMEDIATE: u64 = 2_000;
    const TIMERS: u64 = 50;

    for i in 0..IMMEDIATE {
        let d = Arc::clone(&dispatched);
        let h = edt.handle();
        let prio = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        h.post_event(
            pyjama::events::Event::new(move || {
                d.fetch_add(1, Ordering::Relaxed);
            })
            .with_priority(prio),
        );
    }
    for i in 0..TIMERS {
        let d = Arc::clone(&dispatched);
        edt.invoke_delayed(Duration::from_millis(i % 20), move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
    }
    let t0 = Instant::now();
    while dispatched.load(Ordering::Relaxed) < IMMEDIATE + TIMERS {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "only {}/{} events dispatched",
            dispatched.load(Ordering::Relaxed),
            IMMEDIATE + TIMERS
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = edt.stats();
    assert_eq!(stats.panicked, 0);
    assert!(stats.dispatched >= IMMEDIATE + TIMERS);
}

#[test]
fn runtime_sustains_thousands_of_tagged_blocks() {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("a", 2);
    rt.virtual_target_create_worker("b", 2);
    let count = Arc::new(AtomicU64::new(0));
    const N: u64 = 2_000;

    for i in 0..N {
        let c = Arc::clone(&count);
        let target = if i % 2 == 0 { "a" } else { "b" };
        let tag = if i % 4 < 2 { "even-ish" } else { "odd-ish" };
        rt.target(target, Mode::name_as(tag), move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        // Interleave waits to exercise snapshot/prune under churn.
        if i % 500 == 499 {
            rt.wait_tag("even-ish");
        }
    }
    rt.wait_tag("even-ish");
    rt.wait_tag("odd-ish");
    assert_eq!(count.load(Ordering::Relaxed), N);
    // Tag registry must have compacted, not grown unboundedly.
    assert!(rt.tags().instance_count("even-ish") <= 65);
    assert!(rt.tags().instance_count("odd-ish") <= 65);
}

#[test]
fn repeated_parallel_regions_do_not_leak_state() {
    // 100 fork-joins in a row: construct-registry keys, barrier
    // generations and task queues must all reset cleanly.
    for round in 0..100usize {
        let sum = parallel_reduce(
            3,
            0..200,
            if round % 2 == 0 {
                Schedule::Static { chunk: None }
            } else {
                Schedule::Dynamic { chunk: 7 }
            },
            0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(sum, (0..200u64).sum());
    }
}

#[test]
fn deep_task_recursion_inside_region() {
    // Tasks spawning tasks spawning tasks — a small fork-join tree.
    let count = AtomicU64::new(0);
    parallel(3, |ctx| {
        ctx.single_nowait(|| {
            fn spawn_tree<'s>(
                ctx: &pyjama::omp::Ctx<'_, 's>,
                count: &'s AtomicU64,
                depth: u32,
            ) {
                count.fetch_add(1, Ordering::Relaxed);
                if depth == 0 {
                    return;
                }
                // Tasks cannot capture ctx (lifetime), so recurse inline and
                // only leaf work goes to tasks.
                for _ in 0..2 {
                    ctx.task(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                    spawn_tree(ctx, count, depth - 1);
                }
            }
            spawn_tree(ctx, &count, 6);
        });
        ctx.taskwait();
    });
    // Inline visits V(d) = 2^(d+1) - 1 = 127; leaf tasks T(d) = 2^(d+1) - 2
    // = 126 (depth-0 calls return before spawning).
    let total = count.load(Ordering::Relaxed);
    assert_eq!(total, 253, "127 inline visits + 126 leaf tasks");
}

#[test]
fn edt_pumping_under_continuous_await_load() {
    // A stream of await-handlers on the EDT, each offloading to one
    // worker, with ticker events interleaved: nothing may deadlock and
    // every handler must complete.
    let edt = Edt::spawn("edt");
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
    rt.virtual_target_create_worker("worker", 2);

    let completed = Arc::new(AtomicU64::new(0));
    let ticks = Arc::new(AtomicU64::new(0));
    const HANDLERS: u64 = 30;

    for _ in 0..HANDLERS {
        let rt2 = Arc::clone(&rt);
        let done = Arc::clone(&completed);
        edt.invoke_later(move || {
            rt2.target("worker", Mode::Await, || {
                std::thread::sleep(Duration::from_millis(2));
            });
            done.fetch_add(1, Ordering::Relaxed);
        });
        let t = Arc::clone(&ticks);
        edt.invoke_later(move || {
            t.fetch_add(1, Ordering::Relaxed);
        });
    }
    let t0 = Instant::now();
    while completed.load(Ordering::Relaxed) < HANDLERS {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "await storm deadlocked at {}/{}",
            completed.load(Ordering::Relaxed),
            HANDLERS
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(ticks.load(Ordering::Relaxed), HANDLERS);
    assert_eq!(edt.stats().panicked, 0);
    // Re-entrant dispatch must actually have happened under this load.
    assert!(edt.stats().reentrant > 0);
}

#[test]
fn worker_churn_create_destroy_many_pools() {
    // Pools created and destroyed in a loop: no thread leaks, no panics
    // (regression guard for the self-join fix).
    for i in 0..40 {
        let rt = Runtime::new();
        let w = rt.virtual_target_create_worker(format!("w{i}"), 2);
        let n = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let n = Arc::clone(&n);
            rt.target(&format!("w{i}"), Mode::name_as("t"), move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_tag("t");
        assert_eq!(n.load(Ordering::Relaxed), 20);
        drop(rt);
        w.shutdown();
    }
}
