//! Integration test: the work-stealing worker scheduler, observed through
//! the public API only (`Runtime` + `VirtualTarget::stats`).
//!
//! The per-worker deque / global injector split is an implementation detail;
//! what these tests pin down is the observable contract: same-producer FIFO
//! for external posts, no lost or duplicated executions, and the
//! [`TargetStats`] acquisition counters conserving every execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pyjama::runtime::{Mode, Runtime};

fn spin_until(deadline_ms: u64, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for condition");
        std::thread::yield_now();
    }
}

#[test]
fn steal_counters_conserve_every_execution() {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 4);

    const OUTER: usize = 200;
    let done = Arc::new(AtomicUsize::new(0));
    let inline_done = Arc::new(AtomicUsize::new(0));
    for _ in 0..OUTER {
        let rt2 = Arc::clone(&rt);
        let done = Arc::clone(&done);
        let inline_done = Arc::clone(&inline_done);
        rt.target("worker", Mode::NoWait, move || {
            // A nested target from a member thread takes Algorithm 1's
            // member short-circuit and runs inline, not through the queues.
            let i2 = Arc::clone(&inline_done);
            rt2.target("worker", Mode::NoWait, move || {
                i2.fetch_add(1, Ordering::SeqCst);
            });
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    spin_until(5_000, || {
        done.load(Ordering::SeqCst) == OUTER && inline_done.load(Ordering::SeqCst) == OUTER
    });

    let target = rt.lookup("worker").unwrap();
    spin_until(5_000, || target.pending() == 0);
    let s = target.stats();
    // The nested member posts took the inline short-circuit, so only the
    // external posts flow through the scheduler.
    assert_eq!(s.posted, OUTER as u64, "every external post is counted");
    assert_eq!(s.executed, OUTER as u64);
    assert_eq!(s.rejected, 0);
    // Conservation: each executed region was acquired through exactly one
    // scheduler path — the owner's deque, a steal, or the global injector.
    assert_eq!(
        s.executed,
        s.local_pops + s.steals + s.injector_pops,
        "acquisition counters must account for every execution: {s:?}",
    );
    assert!(
        s.injector_pops > 0,
        "external posts land in the injector: {s:?}",
    );
}

#[test]
fn external_posts_from_one_producer_run_fifo() {
    let rt = Runtime::new();
    rt.virtual_target_create_worker("solo", 1);

    const N: usize = 64;
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..N {
        let order = Arc::clone(&order);
        rt.target("solo", Mode::NoWait, move || {
            order.lock().unwrap().push(i);
        });
    }
    spin_until(5_000, || order.lock().unwrap().len() == N);
    assert_eq!(
        *order.lock().unwrap(),
        (0..N).collect::<Vec<_>>(),
        "a single producer's posts must execute in submission order",
    );
}

#[test]
fn pool_drains_everything_under_concurrent_external_producers() {
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("pool", 4);

    const PRODUCERS: usize = 8;
    const PER: usize = 50;
    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..PER {
                    let d = Arc::clone(&done);
                    rt.target("pool", Mode::NoWait, move || {
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    spin_until(5_000, || done.load(Ordering::SeqCst) == PRODUCERS * PER);

    let s = rt.lookup("pool").unwrap().stats();
    assert_eq!(s.posted, (PRODUCERS * PER) as u64);
    assert_eq!(s.executed, (PRODUCERS * PER) as u64);
    assert_eq!(s.executed, s.local_pops + s.steals + s.injector_pops);
}
