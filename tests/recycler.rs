//! PR-10 acceptance: recycling edge cases observed through the public
//! posting API, end to end. A panicked region is retired and never
//! observable dirty; an empty free list falls back to plain allocation
//! without error; every recycled incarnation carries a fresh `TraceId`;
//! and the recycler's books balance (`allocated == recycled + live +
//! dropped`) after a concurrent post/steal stress run.
//!
//! Single `#[test]`: the recycler's `AllocCounters` and the trace switch
//! are process-global, so the phases must run in one known order rather
//! than interleaved by the test harness.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::runtime::{alloc_stats, Mode, Runtime};

#[test]
fn recycler_edge_cases_end_to_end() {
    // ---------------------------------------------- burst: empty free list
    // A cold burst posts far more regions than the slab could ever hold
    // (it starts empty: nothing has been released yet), so most acquires
    // miss and must fall back to plain construction — silently, with
    // every region still executing exactly once.
    let before = alloc_stats();
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("burst", 1);
    let ran = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    const BURST: usize = 512;
    for _ in 0..BURST {
        let ran = Arc::clone(&ran);
        handles.push(rt.target("burst", Mode::NoWait, move || {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
    }
    for h in &handles {
        h.wait();
    }
    assert_eq!(ran.load(Ordering::Relaxed), BURST);
    let d = alloc_stats().since(&before);
    assert!(
        d.allocated > 0,
        "a cold burst must fall back to fresh construction: {d:?}"
    );

    // ------------------------------------------------- panic then reuse
    // A panicking block poisons its region; the slab must retire it (the
    // poisoned counter moves) and every subsequent post must come up
    // clean: pending → finished, correct body, no stale panic payload.
    let before = alloc_stats();
    let boom = rt.target("burst", Mode::NoWait, || panic!("posted bomb"));
    boom.wait();
    assert!(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| boom.join())).is_err(),
        "the panic must surface at join"
    );
    // Drive enough posts to cycle the recycler past the poisoned slot.
    let clean = Arc::new(AtomicUsize::new(0));
    for _ in 0..64 {
        let clean = Arc::clone(&clean);
        let h = rt.target("burst", Mode::Wait, move || {
            clean.fetch_add(1, Ordering::Relaxed);
        });
        h.join(); // must not re-raise a stale payload from the bomb
    }
    assert_eq!(clean.load(Ordering::Relaxed), 64);
    let d = alloc_stats().since(&before);
    assert!(
        d.poisoned >= 1,
        "the panicked region must be retired, not reused: {d:?}"
    );

    // -------------------------------------- fresh TraceId per incarnation
    // Recycled regions must mint fresh trace ids: a reused `Arc` that kept
    // its predecessor's id would fuse unrelated posts into one flow in the
    // Chrome export.
    pyjama::trace::enable();
    let before = alloc_stats();
    let mut ids = HashSet::new();
    for _ in 0..256 {
        let h = rt.target("burst", Mode::Wait, || {});
        let id = h.trace_id();
        assert!(id != pyjama::trace::TraceId::NONE, "tracing is enabled");
        assert!(ids.insert(id), "trace id {id:?} reused across incarnations");
    }
    let d = alloc_stats().since(&before);
    assert!(
        d.reused > 0,
        "the loop must actually recycle for the assertion to bite: {d:?}"
    );
    pyjama::trace::disable();
    drop(rt);

    // ------------------------------- conservation under post/steal stress
    // Four external posters race a 4-worker pool (injector → deque →
    // steal_half all active), then everything quiesces and the books must
    // balance: every region ever constructed is resting in the slab,
    // still live, or dropped — nothing leaks, nothing double-counts.
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("stress", 4);
    let ran = Arc::new(AtomicUsize::new(0));
    const POSTERS: usize = 4;
    const PER_POSTER: usize = 2_000;
    let threads: Vec<_> = (0..POSTERS)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                let mut handles = Vec::with_capacity(PER_POSTER);
                for i in 0..PER_POSTER {
                    let ran = Arc::clone(&ran);
                    handles.push(rt.target("stress", Mode::NoWait, move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }));
                    // Occasionally wait mid-stream so handle lifetimes
                    // overlap releases (the deferred pin check's race).
                    if i % 97 == 0 {
                        handles.last().unwrap().wait();
                    }
                }
                for h in handles {
                    h.wait();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(ran.load(Ordering::Relaxed), POSTERS * PER_POSTER);
    drop(rt);

    // Workers drain their thread-local caches as they retire; give the
    // pool a moment to shut down before auditing.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut al = alloc_stats();
    while !al.conserved() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        al = alloc_stats();
    }
    assert!(
        al.conserved(),
        "conservation law violated at quiesce: allocated {} != recycled {} + live {} + dropped {}",
        al.allocated,
        al.recycled,
        al.live,
        al.dropped
    );
    assert!(al.reused > 0, "stress run never recycled: {al:?}");
}
