//! PR-8 acceptance: a PJ `//#omp target` block compiled by the bytecode VM
//! is reconstructible from the exported Chrome trace as a connected flow —
//! region post, worker dequeue (with provenance), run — exactly like a
//! hand-written `try_target` call. The VM is not a separate substrate; its
//! `Dispatch` ops feed the same traced runtime paths.
//!
//! Single `#[test]`: tracing is process-global state, and the harness runs
//! tests in one binary concurrently.

use std::sync::Arc;

use pyjama::compiler::{parse, Engine, ExecConfig, Interpreter};
use pyjama::trace::validate::{parse_trace_events, validate_chrome_trace};
use pyjama::trace::{arg, Stage, TraceId};

fn ts_of(chain: &[(u32, pyjama::trace::TraceEvent)], stage: Stage) -> u64 {
    chain
        .iter()
        .find(|(_, e)| e.stage == stage)
        .unwrap_or_else(|| panic!("flow is missing {stage:?}: {chain:#?}"))
        .1
        .ts_ns
}

#[test]
fn pj_target_block_is_one_flow_in_the_export() {
    pyjama::trace::set_ring_capacity(1 << 14);
    pyjama::trace::enable();
    pyjama::trace::clear();

    // One worker-target block with real compute, so the run slice has a
    // duration. No EDT: keep the trace down to exactly this one region.
    let src = r#"
        fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }
        fn main() {
            let out = zeros(1);
            //#omp target virtual(worker) name_as(job)
            { out[0] = fib(17); }
            //#omp wait(job)
            print(out[0]);
        }"#;
    let program = parse(src).expect("parse");
    let out = Interpreter::new(Arc::new(program))
        .run(&ExecConfig {
            engine: Engine::Vm,
            with_edt: false,
            ..Default::default()
        })
        .expect("run");
    assert_eq!(out.output, vec!["1597"]);
    assert_eq!(out.target_posts, 1);

    pyjama::trace::disable();
    let trace = pyjama::trace::collect();

    // The dispatched region minted one flow id at post time.
    let posted: Vec<TraceId> = trace
        .iter_events()
        .filter(|(_, e)| e.stage == Stage::RegionPosted)
        .map(|(_, e)| e.id)
        .collect();
    assert_eq!(posted.len(), 1, "exactly one RegionPosted event");
    let id = posted[0];
    assert_ne!(id, TraceId::NONE);

    let chain = trace.events_for(id);
    let t_post = ts_of(&chain, Stage::RegionPosted);
    let t_deq = ts_of(&chain, Stage::RegionDequeued);
    let t_run = ts_of(&chain, Stage::RegionRunBegin);
    assert!(
        t_post <= t_deq && t_deq <= t_run,
        "stages out of causal order: post={t_post} dequeue={t_deq} run={t_run}"
    );
    let deq = chain
        .iter()
        .find(|(_, e)| e.stage == Stage::RegionDequeued)
        .unwrap();
    assert!(
        matches!(
            deq.1.arg,
            arg::DEQ_LOCAL | arg::DEQ_STEAL | arg::DEQ_INJECTOR | arg::DEQ_HELP
        ),
        "dequeue provenance must be a known source, got {}",
        deq.1.arg
    );

    // Export, validate, and re-find the same chain in the JSON.
    let path = std::env::temp_dir().join("pyjama_pj_trace_flow_test.json");
    trace.write_chrome(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let summary = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(summary.flows >= 1, "the target block must export as a flow");

    let parsed = parse_trace_events(&json).unwrap();
    let slices: Vec<&str> = parsed
        .iter()
        .filter(|e| e.ph == "X" && e.trace_id == Some(id.raw()))
        .map(|e| e.name.as_str())
        .collect();
    for want in ["region_posted(", "region_dequeued(", "region_run"] {
        assert!(
            slices.iter().any(|n| n.starts_with(want)),
            "exported flow {} lacks a {want} slice; has {slices:?}",
            id.raw()
        );
    }

    std::fs::remove_file(&path).ok();
}
