//! PR-8 acceptance: the register bytecode VM and the tree-walking
//! interpreter are observationally identical. Every `.pj` example ships
//! through both engines (directives enabled *and* ignored) and must
//! produce the same captured output and result; a battery of embedded
//! snippets then covers each directive form and the error paths, where
//! the two engines must agree on the exact message.
//!
//! The interpreter is the semantic oracle here — it predates the VM and
//! its behaviour is pinned by its own unit suite — so any divergence is a
//! lowering or dispatch-loop bug by definition.

use std::path::Path;
use std::sync::Arc;

use pyjama::compiler::{parse, Engine, ExecConfig, Interpreter, RunOutput};

fn run(src: &str, engine: Engine, ignore: bool) -> Result<RunOutput, String> {
    let program = parse(src).map_err(|e| e.to_string())?;
    Interpreter::new(Arc::new(program))
        .run(&ExecConfig {
            engine,
            ignore_directives: ignore,
            ..Default::default()
        })
        .map_err(|e| e.to_string())
}

/// Both engines, same config: identical output lines and result value.
fn assert_engines_agree(label: &str, src: &str, ignore: bool) {
    let vm = run(src, Engine::Vm, ignore);
    let interp = run(src, Engine::Interp, ignore);
    match (vm, interp) {
        (Ok(v), Ok(i)) => {
            assert_eq!(v.output, i.output, "{label}: output diverged (ignore={ignore})");
            assert_eq!(v.result, i.result, "{label}: result diverged (ignore={ignore})");
        }
        (Err(v), Err(i)) => {
            assert_eq!(v, i, "{label}: error message diverged (ignore={ignore})");
        }
        (vm, interp) => panic!(
            "{label}: engines disagree on success (ignore={ignore}):\n vm={vm:?}\n interp={interp:?}"
        ),
    }
}

fn examples_dir() -> std::path::PathBuf {
    // file!() is absolute under the staged-rlib harness and repo-relative
    // under cargo; both resolve to <repo>/examples/pj.
    Path::new(file!())
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| Path::new("."))
        .join("examples/pj")
}

#[test]
fn every_example_program_agrees_across_engines() {
    let dir = examples_dir();
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "pj"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        let label = path.file_name().unwrap().to_string_lossy().to_string();
        assert_engines_agree(&label, &src, false);
        assert_engines_agree(&label, &src, true);
        seen += 1;
    }
    assert!(seen >= 4, "expected the shipped examples, found {seen}");
}

#[test]
fn parallel_and_worksharing_directives_agree() {
    // Deterministic by construction: per-thread slots, critical-guarded
    // accumulation, post-join printing.
    assert_engines_agree(
        "parallel",
        r#"fn main() {
            let slots = zeros(3);
            //#omp parallel num_threads(3)
            { slots[omp_get_thread_num()] = omp_get_thread_num() * 10 + omp_get_num_threads(); }
            print(slots[0], slots[1], slots[2]);
        }"#,
        false,
    );
    for sched in ["", "schedule(static)", "schedule(dynamic, 2)", "schedule(guided)"] {
        let src = format!(
            r#"fn main() {{
                let hits = zeros(16);
                let total = 0;
                //#omp parallel for num_threads(4) {sched}
                for i in 0..16 {{
                    hits[i] = hits[i] + i;
                    //#omp critical
                    {{ total += i * i; }}
                }}
                let sum = 0;
                for i in 0..16 {{ sum += hits[i]; }}
                print(sum, total);
            }}"#
        );
        assert_engines_agree(&format!("parallel for {sched:?}"), &src, false);
        assert_engines_agree(&format!("parallel for {sched:?}"), &src, true);
    }
    // Empty iteration space: the team must not fork.
    assert_engines_agree(
        "empty parallel for",
        r#"fn main() {
            let n = 0;
            //#omp parallel for
            for i in 5..5 { n += 1; }
            print(n);
        }"#,
        false,
    );
}

#[test]
fn team_coordination_directives_agree() {
    assert_engines_agree(
        "single+master+barrier",
        r#"fn main() {
            let singles = 0;
            let masters = 0;
            //#omp parallel num_threads(4)
            {
                //#omp single
                {
                    //#omp critical
                    { singles += 1; }
                }
                //#omp barrier
                //#omp master
                { masters += 1; }
            }
            print(singles, masters);
        }"#,
        false,
    );
    assert_engines_agree(
        "task+taskwait",
        r#"fn main() {
            let done = zeros(4);
            //#omp parallel num_threads(2)
            {
                //#omp single
                {
                    for k in 0..4 {
                        //#omp task
                        { done[k] = k + 1; }
                    }
                    //#omp taskwait
                }
            }
            print(done[0], done[1], done[2], done[3]);
        }"#,
        false,
    );
    assert_engines_agree(
        "sections",
        r#"fn main() {
            let got = zeros(3);
            //#omp parallel num_threads(2)
            {
                //#omp sections
                {
                    got[0] = 1;
                    got[1] = 2;
                    got[2] = 3;
                }
            }
            print(got[0] + got[1] + got[2]);
        }"#,
        false,
    );
    // Orphaned forms fall back to sequential execution on both engines.
    assert_engines_agree(
        "orphaned single/task/sections/master",
        r#"fn main() {
            let n = 0;
            //#omp single
            { n += 1; }
            //#omp task
            { n += 10; }
            //#omp master
            { n += 100; }
            //#omp sections
            { n += 1000; }
            //#omp taskwait
            print(n);
        }"#,
        false,
    );
}

#[test]
fn target_directives_agree() {
    assert_engines_agree(
        "target wait + nowait + named wait",
        r#"fn main() {
            let log = arr();
            //#omp target virtual(worker)
            { push(log, "sync"); }
            //#omp target virtual(worker) name_as(bg)
            { push(log, "named"); }
            //#omp wait(bg)
            //#omp target virtual(worker) nowait
            { sleep_ms(1); }
            print(log[0], log[1], len(log));
        }"#,
        false,
    );
    assert_engines_agree(
        "target if(false) runs inline",
        r#"fn main() {
            let x = 0;
            //#omp target virtual(worker) if(1 > 2)
            { x = 42; }
            print(x);
        }"#,
        false,
    );
    assert_engines_agree(
        "target await",
        r#"fn main() {
            let log = arr();
            //#omp target virtual(worker) await
            {
                push(log, "outer");
                //#omp target virtual(edt) name_as(inner)
                { push(log, "inner-edt"); }
            }
            //#omp wait(inner)
            print(log[0], log[1], len(log));
        }"#,
        false,
    );
    assert_engines_agree(
        "nested data-context sharing",
        r#"fn bump(cell) { cell[0] = cell[0] + 1; }
        fn main() {
            let cell = zeros(1);
            let x = 5;
            //#omp target virtual(worker)
            {
                x = x * 2;
                bump(cell);
                //#omp target virtual(worker)
                { x = x + 1; }
            }
            print(x, cell[0]);
        }"#,
        false,
    );
}

#[test]
fn language_core_and_builtins_agree() {
    assert_engines_agree(
        "arithmetic, strings, arrays, control flow",
        r#"fn classify(n) {
            if n % 15 == 0 { return "fizzbuzz"; }
            if n % 3 == 0 { return "fizz"; }
            if n % 5 == 0 { return "buzz"; }
            return str(n);
        }
        fn main() {
            let words = arr();
            let i = 1;
            while i <= 15 {
                push(words, classify(i));
                i += 1;
            }
            let joined = "";
            for k in 0..len(words) {
                joined = joined + words[k] + " ";
            }
            print(replace(joined, "fizzbuzz", "FB"));
            print(substr(joined, 0, 4), contains(joined, "buzz"));
            print(min(3, -2), max(1.5, 2.5), abs(0 - 7), pow(2, 10), floor(3.9));
            print(-5 / 2, -5 % 2, 7.0 / 2.0, "a" < "b", !(1 == 2) && true);
            return len(words);
        }"#,
        false,
    );
    assert_engines_agree(
        "short-circuit evaluation order",
        r#"fn tick(log, tag, v) { push(log, tag); return v; }
        fn main() {
            let log = arr();
            let a = tick(log, "l1", false) && tick(log, "r1", true);
            let b = tick(log, "l2", true) || tick(log, "r2", false);
            let c = tick(log, "l3", true) && tick(log, "r3", false);
            print(a, b, c, len(log));
            for i in 0..len(log) { print(log[i]); }
        }"#,
        false,
    );
    assert_engines_agree(
        "break/continue and nested loops",
        r#"fn main() {
            let n = 0;
            for i in 0..10 {
                if i % 2 == 0 { continue; }
                let j = 0;
                while true {
                    j += 1;
                    if j == 3 { break; }
                }
                n += i * j;
                if i > 6 { break; }
            }
            print(n);
        }"#,
        false,
    );
}

#[test]
fn runtime_errors_agree_verbatim() {
    for (label, src) in [
        ("undefined variable", "fn main() { print(nope); }"),
        (
            "assignment to undefined",
            "fn main() { ghost = 3; }",
        ),
        ("division by zero", "fn main() { let z = 0; print(1 / z); }"),
        ("remainder by zero", "fn main() { let z = 0; print(1 % z); }"),
        (
            "index out of bounds",
            "fn main() { let a = zeros(2); print(a[5]); }",
        ),
        (
            "index-assign out of bounds",
            "fn main() { let a = zeros(2); a[7] = 1; }",
        ),
        ("cannot index", "fn main() { let s = 3; print(s[0]); }"),
        (
            "bad arity",
            "fn f(a, b) { return a; } fn main() { f(1); }",
        ),
        ("unknown function", "fn main() { warble(); }"),
        (
            "type error in binop",
            r#"fn main() { print(true + 1); }"#,
        ),
        (
            "non-bool condition",
            "fn main() { if 3 { print(1); } }",
        ),
        (
            "non-int range bound",
            r#"fn main() { for i in 0.."x" { print(i); } }"#,
        ),
        (
            "neg of string",
            r#"fn main() { print(-"s"); }"#,
        ),
        (
            "orphaned barrier",
            "fn main() { \n//#omp barrier\n print(1); }",
        ),
        (
            "errors only when reached",
            "fn main() { if false { ghost = 1; } print(9); }",
        ),
    ] {
        assert_engines_agree(label, src, false);
    }
}
