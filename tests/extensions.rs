//! Integration tests for the extension surface: simulated devices,
//! async-I/O helpers, coalescing, recurring timers, and `sections`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::events::{Coalescer, Edt};
use pyjama::gui::{ConfinementPolicy, Gui};
use pyjama::kernels::crypt::{decrypt_seq, encrypt_seq, IdeaKey};
use pyjama::omp::parallel_sections;
use pyjama::runtime::asyncio::simulated_read;
use pyjama::runtime::{DeviceTarget, Mode, Runtime, SimulatedDevice, VirtualTarget};

/// Offload IDEA encryption to a simulated accelerator with explicit data
/// mapping, then verify on the host — the full `target device` ceremony
/// that `target virtual` removes.
#[test]
fn device_offloaded_encryption_round_trips() {
    let device = SimulatedDevice::new(0, Duration::ZERO);
    let key = IdeaKey::benchmark_key();
    let plaintext = pyjama::kernels::crypt::make_plaintext(256);

    device.map_to("buf", &plaintext).unwrap();
    let key2 = key.clone();
    device
        .launch("idea-encrypt", move |mem| {
            let buf = mem.buffer_mut("buf").unwrap();
            encrypt_seq(&key2, buf);
        })
        .join();
    let mut ciphertext = Vec::new();
    device.map_from("buf", &mut ciphertext).unwrap();

    assert_ne!(ciphertext, plaintext);
    let mut round = ciphertext;
    decrypt_seq(&key, &mut round);
    assert_eq!(round, plaintext);
    assert_eq!(device.bytes_to_device(), 256);
    assert_eq!(device.bytes_from_device(), 256);
}

/// A device target participates in the normal directive machinery
/// (`wait`, `nowait`, `await`) like any virtual target.
#[test]
fn device_target_supports_scheduling_modes() {
    let rt = Runtime::new();
    let device = SimulatedDevice::new(3, Duration::ZERO);
    let target = DeviceTarget::new(device);
    rt.register(target.name().to_string(), target as Arc<dyn VirtualTarget>)
        .unwrap();

    let ran = Arc::new(AtomicU64::new(0));
    for mode in [Mode::Wait, Mode::NoWait, Mode::Await, Mode::name_as("dev")] {
        let r = Arc::clone(&ran);
        let h = rt.target("device:3", mode, move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        h.wait();
    }
    rt.wait_tag("dev");
    assert_eq!(ran.load(Ordering::SeqCst), 4);
}

/// submit_then chains: download on io pool → decode on cpu pool → display
/// on the EDT, with widget confinement enforced throughout.
#[test]
fn submit_then_chain_across_three_targets() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("io", 1);
    rt.virtual_target_create_worker("cpu", 1);

    let label = gui.label("status");
    let done = Arc::new(AtomicBool::new(false));

    let rt2 = Arc::clone(&rt);
    let l2 = Arc::clone(&label);
    let d2 = Arc::clone(&done);
    rt.submit_then(
        "io",
        simulated_read(Duration::from_millis(10), b"abc".to_vec()),
        "cpu",
        move |raw| {
            let decoded = raw.iter().map(|b| b.to_ascii_uppercase()).collect::<Vec<_>>();
            let l3 = Arc::clone(&l2);
            let d3 = Arc::clone(&d2);
            rt2.target("edt", Mode::NoWait, move || {
                l3.set_text(String::from_utf8(decoded).unwrap());
                d3.store(true, Ordering::SeqCst);
            });
        },
    )
    .unwrap();

    let t0 = Instant::now();
    while !done.load(Ordering::SeqCst) {
        assert!(t0.elapsed() < Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(label.text(), "ABC");
    assert_eq!(gui.confinement().violation_count(), 0);
    gui.shutdown();
}

/// Coalesced progress updates during an offloaded computation: many
/// `nowait`-style broadcasts collapse to few EDT dispatches, and the final
/// value always survives.
#[test]
fn coalesced_progress_updates_from_worker() {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", 1);
    let bar = gui.progress_bar("bar");
    let coalescer = Arc::new(Coalescer::new(gui.edt_handle()));

    // Park the EDT briefly so the burst piles up behind one event.
    gui.invoke_later(|| std::thread::sleep(Duration::from_millis(40)));

    let b2 = Arc::clone(&bar);
    let c2 = Arc::clone(&coalescer);
    let h = rt.target("worker", Mode::NoWait, move || {
        for pct in 1..=100u8 {
            let b3 = Arc::clone(&b2);
            c2.post("progress", move || b3.set_value(pct));
        }
    });
    h.wait();
    gui.drain();
    assert_eq!(bar.value(), 100, "the final update must win");
    assert!(
        bar.history().len() < 100,
        "coalescing should collapse updates: {} dispatched",
        bar.history().len()
    );
    gui.shutdown();
}

/// A recurring timer measures EDT availability while an await-offloaded
/// computation runs — the Figure 1(ii) scenario with library primitives.
#[test]
fn interval_ticks_during_await_offload() {
    let edt = Edt::spawn("edt");
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
    rt.virtual_target_create_worker("worker", 1);

    let interval = edt.handle().post_interval(Duration::from_millis(3), || {});
    let baseline = interval.fired();

    let done = Arc::new(AtomicBool::new(false));
    let rt2 = Arc::clone(&rt);
    let d2 = Arc::clone(&done);
    edt.invoke_later(move || {
        rt2.target("worker", Mode::Await, || {
            std::thread::sleep(Duration::from_millis(60));
        });
        d2.store(true, Ordering::SeqCst);
    });
    let t0 = Instant::now();
    while !done.load(Ordering::SeqCst) {
        assert!(t0.elapsed() < Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(1));
    }
    let during = interval.fired() - baseline;
    interval.cancel();
    assert!(
        during >= 3,
        "EDT should have dispatched ticks while awaiting (got {during})"
    );
}

/// `parallel sections` runs heterogeneous blocks concurrently — the
/// download+render split of the image pipeline as a fork-join construct.
#[test]
fn parallel_sections_overlap_io_phases() {
    let t0 = Instant::now();
    let a = || std::thread::sleep(Duration::from_millis(40));
    let b = || std::thread::sleep(Duration::from_millis(40));
    let c = || std::thread::sleep(Duration::from_millis(40));
    parallel_sections(3, &[&a, &b, &c]);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(110),
        "three 40 ms sections on 3 threads took {elapsed:?}"
    );
}

/// Devices charge transfer costs; virtual targets do not — quantifying the
/// §III-A contrast.
#[test]
fn transfer_cost_separates_device_from_virtual_target() {
    let rt = Runtime::new();
    rt.virtual_target_create_worker("worker", 1);
    let payload = vec![0u8; 64 * 1024];

    // Virtual target: shared memory, no copy.
    let p2 = payload.clone();
    let t0 = Instant::now();
    rt.target("worker", Mode::Wait, move || {
        std::hint::black_box(p2.len());
    });
    let virtual_time = t0.elapsed();

    // Device with 1 ms/KiB transfer cost: 64 KiB in + out ≈ ≥128 ms.
    let device = SimulatedDevice::new(1, Duration::from_millis(1));
    let t0 = Instant::now();
    device.map_to("p", &payload).unwrap();
    device.launch("touch", |mem| {
        let b = mem.buffer("p").unwrap();
        std::hint::black_box(b.len());
    }).join();
    let mut back = Vec::new();
    device.map_from("p", &mut back).unwrap();
    let device_time = t0.elapsed();

    assert!(device_time >= Duration::from_millis(100));
    assert!(
        device_time > virtual_time * 10,
        "device {device_time:?} should dwarf virtual {virtual_time:?}"
    );
}
