//! PR-4 acceptance: one HTTP request served under the Pyjama policy is
//! reconstructible **end to end** from the exported Chrome trace — accept,
//! region post, worker dequeue (with provenance), run, response write —
//! as one connected flow along a single [`TraceId`]; and the scheduler's
//! conservation law holds over the same window.
//!
//! Everything here goes through public API only: `trace::enable/collect`,
//! `Trace::write_chrome`, and the validator/parser that `trace_check`
//! itself uses — so this test exercises the exact pipeline a user gets
//! from `--trace out.json` + `trace_check out.json`.
//!
//! Single `#[test]`: tracing is process-global state, and the harness runs
//! tests in one binary concurrently.

use std::sync::Arc;

use pyjama::http::{http_post, HttpServer, Request, Response, ServingPolicy, Status};
use pyjama::runtime::{reset_park_stats, Runtime, VirtualTarget};
use pyjama::trace::validate::{parse_trace_events, validate_chrome_trace};
use pyjama::trace::{arg, Stage, TraceId};

fn handler(req: &Request) -> Response {
    // Enough compute that the region-run slice has a real duration.
    let mut acc = 0u64;
    for (i, b) in req.body.iter().enumerate() {
        acc = acc.wrapping_mul(31).wrapping_add(*b as u64 + i as u64);
    }
    Response::ok(acc.to_le_bytes().to_vec())
}

/// Timestamp of the single `stage` event in `chain`, panicking with a
/// readable message if it is absent.
fn ts_of(chain: &[(u32, pyjama::trace::TraceEvent)], stage: Stage) -> u64 {
    chain
        .iter()
        .find(|(_, e)| e.stage == stage)
        .unwrap_or_else(|| panic!("flow is missing {stage:?}: {chain:#?}"))
        .1
        .ts_ns
}

#[test]
fn one_request_is_one_connected_flow_in_the_export() {
    pyjama::trace::set_ring_capacity(1 << 14);
    pyjama::trace::enable();
    pyjama::trace::clear();
    reset_park_stats();

    let rt = Arc::new(Runtime::new());
    let worker = rt.virtual_target_create_worker("worker", 2);
    let before = worker.stats();

    let mut server = HttpServer::start(
        ServingPolicy::PyjamaVirtualTarget {
            runtime: Arc::clone(&rt),
            target: "worker".into(),
        },
        handler,
    )
    .unwrap();
    server.reset_conn_stats();

    let resp = http_post(server.addr(), "/hash", vec![0xA5; 256]).unwrap();
    assert_eq!(resp.status, Status::Ok);

    // `served` ticks after the response write, so the client can see its
    // response a moment before `ResponseWritten` lands in a ring: spin.
    let t0 = std::time::Instant::now();
    while server.served() < 1 && t0.elapsed() < std::time::Duration::from_secs(5) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(server.served(), 1);
    let conn_stats = server.conn_stats();
    server.shutdown();

    pyjama::trace::disable();
    let trace = pyjama::trace::collect();

    // --- locate the request's flow: the id minted at accept --------------
    assert_eq!(conn_stats.accepted, 1, "one http_post = one connection");
    let accepted: Vec<TraceId> = trace
        .iter_events()
        .filter(|(_, e)| e.stage == Stage::ConnAccepted)
        .map(|(_, e)| e.id)
        .collect();
    assert_eq!(accepted.len(), 1, "exactly one ConnAccepted event");
    let id = accepted[0];
    assert_ne!(id, TraceId::NONE);

    // --- the in-process chain is causally ordered ------------------------
    let chain = trace.events_for(id);
    let t_accept = ts_of(&chain, Stage::ConnAccepted);
    let t_post = ts_of(&chain, Stage::RegionPosted);
    let t_deq = ts_of(&chain, Stage::RegionDequeued);
    let t_run = ts_of(&chain, Stage::RegionRunBegin);
    let t_resp = ts_of(&chain, Stage::ResponseWritten);
    assert!(
        t_accept <= t_post && t_post <= t_deq && t_deq <= t_run && t_run <= t_resp,
        "stages out of causal order: accept={t_accept} post={t_post} \
         dequeue={t_deq} run={t_run} respond={t_resp}"
    );
    let deq = chain
        .iter()
        .find(|(_, e)| e.stage == Stage::RegionDequeued)
        .unwrap();
    assert!(
        matches!(
            deq.1.arg,
            arg::DEQ_LOCAL | arg::DEQ_STEAL | arg::DEQ_INJECTOR | arg::DEQ_HELP
        ),
        "dequeue provenance must be a known source, got {}",
        deq.1.arg
    );

    // --- export, validate, and re-find the same chain in the JSON --------
    let path = std::env::temp_dir().join("pyjama_trace_pipeline_test.json");
    trace.write_chrome(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let summary = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(summary.flows >= 1, "the request must export as a flow");
    assert!(
        summary.threads >= 2,
        "acceptor and worker are different threads"
    );

    let parsed = parse_trace_events(&json).unwrap();
    let slices: Vec<&str> = parsed
        .iter()
        .filter(|e| e.ph == "X" && e.trace_id == Some(id.raw()))
        .map(|e| e.name.as_str())
        .collect();
    for want in [
        "conn_accepted",
        "region_posted(", // decorated with how it was queued
        "region_dequeued(",
        "region_run",
        "response_written",
    ] {
        assert!(
            slices.iter().any(|n| n.starts_with(want)),
            "exported flow {} lacks a {want} slice; has {slices:?}",
            id.raw()
        );
    }
    // The flow arrows along the id connect first to last event: exactly one
    // start and one finish with this id.
    let starts = parsed
        .iter()
        .filter(|e| e.ph == "s" && e.id == Some(id.raw()))
        .count();
    let finishes = parsed
        .iter()
        .filter(|e| e.ph == "f" && e.id == Some(id.raw()))
        .count();
    assert_eq!((starts, finishes), (1, 1), "one connected flow per request");

    // --- conservation law over the same window ---------------------------
    // The pool is quiescent (request served, server down), so every
    // executed region left through exactly one queue source.
    let delta = worker.stats().since(&before);
    assert!(delta.executed >= 1, "the serve region ran on the pool");
    assert_eq!(
        delta.executed,
        delta.pops_total(),
        "executed == local + steals + injector pops: {delta:?}"
    );

    // Reset paths stay usable mid-process.
    worker.reset_stats();
    let zeroed = worker.stats();
    assert_eq!(zeroed.executed, 0);
    assert_eq!(zeroed.posted, 0);

    std::fs::remove_file(&path).ok();
}
