//! Integration test: Table I's scheduling-mode semantics, end to end,
//! with a real EDT as the encountering thread.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::events::Edt;
use pyjama::runtime::{Mode, Runtime};

const BLOCK: Duration = Duration::from_millis(40);

fn rt_with_worker() -> Runtime {
    let rt = Runtime::new();
    rt.virtual_target_create_worker("worker", 2);
    rt
}

#[test]
fn default_mode_blocks_the_encountering_thread() {
    let rt = rt_with_worker();
    let t0 = Instant::now();
    rt.target("worker", Mode::Wait, || std::thread::sleep(BLOCK));
    assert!(t0.elapsed() >= BLOCK, "wait must not return early");
}

#[test]
fn nowait_skips_past_without_notification() {
    let rt = rt_with_worker();
    let t0 = Instant::now();
    let h = rt.target("worker", Mode::NoWait, || std::thread::sleep(BLOCK));
    assert!(
        t0.elapsed() < BLOCK / 2,
        "nowait must return well before the block completes"
    );
    assert!(!h.is_finished());
    h.wait();
}

#[test]
fn name_as_instances_all_complete_at_wait_tag() {
    let rt = rt_with_worker();
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..6 {
        let d = Arc::clone(&done);
        rt.target("worker", Mode::name_as("batch"), move || {
            std::thread::sleep(Duration::from_millis(5));
            d.fetch_add(1, Ordering::SeqCst);
        });
    }
    rt.wait_tag("batch");
    assert_eq!(done.load(Ordering::SeqCst), 6);
}

#[test]
fn await_on_edt_keeps_dispatching_other_events() {
    // The Table I row that distinguishes `await` from `wait`: while the
    // block runs, the EDT processes other handlers.
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 1);
    let edt = Edt::spawn("edt");
    rt.virtual_target_register_edt("edt", edt.handle()).unwrap();

    let pumped = Arc::new(AtomicBool::new(false));
    let continuation_saw_pumped = Arc::new(AtomicBool::new(false));

    let rt2 = Arc::clone(&rt);
    let p2 = Arc::clone(&pumped);
    let c2 = Arc::clone(&continuation_saw_pumped);
    edt.invoke_later(move || {
        rt2.target("worker", Mode::Await, || std::thread::sleep(BLOCK));
        // By now the other event must have been dispatched re-entrantly.
        c2.store(p2.load(Ordering::SeqCst), Ordering::SeqCst);
    });
    let p3 = Arc::clone(&pumped);
    edt.invoke_later(move || p3.store(true, Ordering::SeqCst));

    let t0 = Instant::now();
    while !continuation_saw_pumped.load(Ordering::SeqCst) {
        assert!(t0.elapsed() < Duration::from_secs(10), "await deadlocked");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn wait_on_edt_does_not_dispatch_other_events() {
    // Contrast with the await test: plain `wait` keeps the EDT blocked, so
    // the second event runs only after the first handler completes.
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_create_worker("worker", 1);
    let edt = Edt::spawn("edt");
    rt.virtual_target_register_edt("edt", edt.handle()).unwrap();

    let second_ran_during_wait = Arc::new(AtomicBool::new(false));
    let second = Arc::new(AtomicBool::new(false));

    let rt2 = Arc::clone(&rt);
    let flag = Arc::clone(&second);
    let observed = Arc::new(AtomicBool::new(false));
    let obs2 = Arc::clone(&observed);
    let srdw = Arc::clone(&second_ran_during_wait);
    edt.invoke_later(move || {
        rt2.target("worker", Mode::Wait, || std::thread::sleep(BLOCK));
        srdw.store(flag.load(Ordering::SeqCst), Ordering::SeqCst);
        obs2.store(true, Ordering::SeqCst);
    });
    let s2 = Arc::clone(&second);
    edt.invoke_later(move || s2.store(true, Ordering::SeqCst));

    let t0 = Instant::now();
    while !observed.load(Ordering::SeqCst) {
        assert!(t0.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        !second_ran_during_wait.load(Ordering::SeqCst),
        "wait must not process other events"
    );
}

#[test]
fn shared_tag_across_different_blocks() {
    // "different target blocks are allowed to share the same name-tag"
    let rt = rt_with_worker();
    let a = Arc::new(AtomicBool::new(false));
    let b = Arc::new(AtomicBool::new(false));
    let a2 = Arc::clone(&a);
    rt.target("worker", Mode::name_as("shared"), move || {
        std::thread::sleep(Duration::from_millis(10));
        a2.store(true, Ordering::SeqCst);
    });
    let b2 = Arc::clone(&b);
    rt.target("worker", Mode::name_as("shared"), move || {
        std::thread::sleep(Duration::from_millis(20));
        b2.store(true, Ordering::SeqCst);
    });
    rt.wait_tag("shared");
    assert!(a.load(Ordering::SeqCst) && b.load(Ordering::SeqCst));
}
