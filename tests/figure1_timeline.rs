//! Figure 1, reconstructed with the Timeline instrumentation: the same
//! three event requests, handled single-threaded (i) vs multi-threaded
//! (ii), asserting the paper's picture — serialised rectangles vs
//! overlapping ones — from recorded timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama::gui::{ConfinementPolicy, Gui};
use pyjama::metrics::{Timeline, TimelineEventKind};
use pyjama::runtime::{Mode, Runtime};

const HANDLER_TIME: Duration = Duration::from_millis(25);
const REQUESTS: u64 = 3;

fn run(offload: bool) -> Timeline {
    let gui = Gui::launch(ConfinementPolicy::Enforce);
    let rt = Arc::new(Runtime::new());
    rt.virtual_target_register_edt("edt", gui.edt_handle()).unwrap();
    rt.virtual_target_create_worker("worker", REQUESTS as usize);

    let timeline = Arc::new(Timeline::new());
    let completed = Arc::new(AtomicU64::new(0));

    for id in 1..=REQUESTS {
        timeline.record(id, "generator", TimelineEventKind::Fired);
        let tl = Arc::clone(&timeline);
        let rt2 = Arc::clone(&rt);
        let done = Arc::clone(&completed);
        gui.invoke_later(move || {
            let work = {
                let tl = Arc::clone(&tl);
                let done = Arc::clone(&done);
                move || {
                    tl.record(id, "handler", TimelineEventKind::HandlingStarted);
                    std::thread::sleep(HANDLER_TIME);
                    tl.record(id, "handler", TimelineEventKind::HandlingFinished);
                    done.fetch_add(1, Ordering::SeqCst);
                }
            };
            if offload {
                tl.record(id, "edt", TimelineEventKind::Offloaded("worker".into()));
                rt2.target("worker", Mode::NoWait, work);
            } else {
                work();
            }
        });
    }

    let t0 = Instant::now();
    while completed.load(Ordering::SeqCst) < REQUESTS {
        assert!(t0.elapsed() < Duration::from_secs(30), "handlers stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    gui.shutdown();
    Arc::try_unwrap(timeline).ok().expect("sole owner after shutdown")
}

#[test]
fn single_threaded_processing_serialises_handlers() {
    let tl = run(false);
    // Figure 1(i): no two handling rectangles overlap.
    for a in 1..=REQUESTS {
        for b in a + 1..=REQUESTS {
            assert!(
                !tl.handled_concurrently(a, b),
                "requests {a} and {b} overlapped on a single-threaded EDT"
            );
        }
    }
    // Later requests inherit the queueing delay: response(3) well above
    // response(1).
    let r1 = tl.response_time(1).unwrap();
    let r3 = tl.response_time(3).unwrap();
    assert!(
        r3 > r1 + HANDLER_TIME,
        "request 3 ({r3:?}) should queue behind 1 ({r1:?})"
    );
}

#[test]
fn multi_threaded_processing_overlaps_handlers() {
    let tl = run(true);
    // Figure 1(ii): at least one pair overlaps (three workers available).
    let mut overlaps = 0;
    for a in 1..=REQUESTS {
        for b in a + 1..=REQUESTS {
            if tl.handled_concurrently(a, b) {
                overlaps += 1;
            }
        }
    }
    assert!(overlaps >= 1, "offloaded handlers never overlapped");
    // Every request was explicitly offloaded.
    for id in 1..=REQUESTS {
        assert!(tl
            .for_id(id)
            .iter()
            .any(|e| matches!(&e.kind, TimelineEventKind::Offloaded(t) if t == "worker")));
    }
}

#[test]
fn offloading_cuts_tail_response_time() {
    let seq = run(false);
    let off = run(true);
    let worst_seq = (1..=REQUESTS).map(|i| seq.response_time(i).unwrap()).max().unwrap();
    let worst_off = (1..=REQUESTS).map(|i| off.response_time(i).unwrap()).max().unwrap();
    assert!(
        worst_off < worst_seq,
        "offloaded worst-case {worst_off:?} should beat sequential {worst_seq:?}"
    );
}
